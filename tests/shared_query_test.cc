// Multi-query shared slicing (DESIGN.md §10): the QueryRegistry must answer
// every registered query exactly as a dedicated per-query operator would —
// across slicing techniques and baselines, all aggregate classes,
// out-of-order input, mid-stream register/deregister, rewrite ablation, and
// snapshot round-trips.

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "aggregates/registry.h"
#include "baselines/aggregate_tree.h"
#include "baselines/buckets.h"
#include "baselines/tuple_buffer.h"
#include "core/general_slicing_operator.h"
#include "core/query_builder.h"
#include "query/query_registry.h"
#include "testing/stream_gen.h"
#include "tests/test_util.h"

namespace scotty {
namespace {

using testing::GenerateStream;
using testing::StreamSpec;
using testutil::ResultKey;
using testutil::RunToFinalResults;
using testutil::T;

constexpr Time kLateness = 1'000'000'000'000;

bool IsApproxAgg(const std::string& name) {
  return name == "stddev" || name == "geometric-mean";
}

/// Per-query final results keyed by the query's local window/agg ids.
using FinalMap = std::map<ResultKey, Value>;

/// Drives the registry with the RunToFinalResults cadence, draining every
/// query's results separately after each watermark.
std::map<QueryRegistry::QueryId, FinalMap> RunRegistryToFinal(
    QueryRegistry& reg, const std::vector<QueryRegistry::QueryId>& ids,
    const std::vector<Tuple>& tuples, Time final_wm, int wm_every,
    Time wm_lag) {
  std::map<QueryRegistry::QueryId, FinalMap> out;
  auto drain = [&] {
    for (QueryRegistry::QueryId id : ids) {
      for (const WindowResult& r : reg.TakeQueryResults(id)) {
        out[id][{r.window_id, r.agg_id, r.start, r.end}] = r.value;
      }
    }
  };
  uint64_t seq = 0;
  Time max_ts = kNoTime;
  Time last_wm = kNoTime;
  for (Tuple t : tuples) {
    t.seq = seq++;
    reg.ProcessTuple(t);
    max_ts = std::max(max_ts, t.ts);
    if (wm_every > 0 && seq % static_cast<uint64_t>(wm_every) == 0) {
      const Time wm = max_ts - wm_lag;
      if (wm > last_wm || last_wm == kNoTime) {
        reg.ProcessWatermark(wm);
        last_wm = wm;
        drain();
      }
    }
  }
  reg.ProcessWatermark(final_wm);
  drain();
  return out;
}

std::vector<WindowPtr> InstantiateAll(const std::vector<std::string>& descs) {
  std::vector<WindowPtr> out;
  for (const std::string& text : descs) {
    WindowDesc d;
    EXPECT_TRUE(WindowDesc::Parse(text, &d)) << text;
    out.push_back(d.Instantiate());
  }
  return out;
}

std::unique_ptr<GeneralSlicingOperator> BuildGSO(const QueryDef& def,
                                                 StoreMode mode,
                                                 bool in_order) {
  GeneralSlicingOperator::Options o;
  o.store_mode = mode;
  o.stream_in_order = in_order;
  o.allowed_lateness = in_order ? 0 : kLateness;
  auto op = std::make_unique<GeneralSlicingOperator>(o);
  for (const std::string& a : def.aggs) op->AddAggregation(MakeAggregation(a));
  for (WindowPtr& w : InstantiateAll(def.windows)) op->AddWindow(std::move(w));
  return op;
}

template <typename Op>
std::unique_ptr<Op> BuildBaseline(const QueryDef& def, bool in_order) {
  auto op = std::make_unique<Op>(in_order, in_order ? 0 : kLateness);
  for (const std::string& a : def.aggs) op->AddAggregation(MakeAggregation(a));
  for (WindowPtr& w : InstantiateAll(def.windows)) op->AddWindow(std::move(w));
  return op;
}

QueryRegistry::Options RegistryOptions(bool in_order = false,
                                       bool rewrites = true) {
  QueryRegistry::Options o;
  o.engine.stream_in_order = in_order;
  o.engine.allowed_lateness = in_order ? 0 : kLateness;
  o.enable_rewrites = rewrites;
  return o;
}

void ExpectQueryMatches(const FinalMap& got, const FinalMap& want,
                        const std::vector<std::string>& aggs,
                        const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  auto it = got.begin();
  for (const auto& [key, val] : want) {
    ASSERT_EQ(it->first, key) << label;
    const std::string& agg = aggs[static_cast<size_t>(std::get<1>(key))];
    if (IsApproxAgg(agg)) {
      const double a = it->second.Numeric();
      const double b = val.Numeric();
      if (!(std::isnan(a) && std::isnan(b))) {
        const double tol =
            1e-6 * std::max({1.0, std::fabs(a), std::fabs(b)});
        EXPECT_NEAR(a, b, tol) << label << " agg=" << agg;
      }
    } else {
      EXPECT_EQ(it->second, val) << label << " agg=" << agg;
    }
    ++it;
  }
}

std::vector<Tuple> OOOStream(uint64_t seed, int n, double punct = 0.0) {
  StreamSpec spec;
  spec.seed = seed;
  spec.num_tuples = n;
  spec.step_lo = 1;
  spec.step_hi = 4;
  spec.value_range = 20;
  spec.punctuation_probability = punct;
  spec.ooo_fraction = 0.3;
  spec.max_delay = 40;
  spec.burst_probability = 0.05;
  return GenerateStream(spec);
}

Time MaxTs(const std::vector<Tuple>& tuples) {
  Time max_ts = kNoTime;
  for (const Tuple& t : tuples) max_ts = std::max(max_ts, t.ts);
  return max_ts;
}

// ---------------------------------------------------------------------------
// Planning introspection.

TEST(RegistryPlanning, DedupAndSharedPlans) {
  QueryRegistry reg(RegistryOptions());
  std::string err;
  const auto q1 = reg.Register({{"tumbling:10", "session:7"}, {"sum"}}, &err);
  ASSERT_NE(q1, QueryRegistry::kInvalidQuery) << err;
  const auto q2 =
      reg.Register({{"tumbling:10", "sliding:20:5"}, {"sum", "min"}}, &err);
  ASSERT_NE(q2, QueryRegistry::kInvalidQuery) << err;

  const QueryRegistry::QueryPlan p1 = reg.Plan(q1);
  ASSERT_TRUE(p1.alive);
  EXPECT_EQ(p1.windows[0], QueryRegistry::PlanKind::kShared);
  EXPECT_EQ(p1.windows[1], QueryRegistry::PlanKind::kShared);

  const QueryRegistry::QueryPlan p2 = reg.Plan(q2);
  ASSERT_TRUE(p2.alive);
  // tumbling:10 is already live -> dedup; sliding:20:5 has slide 5 which is
  // not a multiple of 10, so no rewrite applies -> shared.
  EXPECT_EQ(p2.windows[0], QueryRegistry::PlanKind::kSharedDedup);
  EXPECT_EQ(p2.windows[1], QueryRegistry::PlanKind::kShared);

  // tumbling:10 counted once: the engine carries 3 windows, not 4.
  EXPECT_EQ(reg.EngineWindows(), 3u);
  EXPECT_EQ(reg.ActiveQueries(), 2u);
}

TEST(RegistryPlanning, FactorWindowsRewriteFoldsOverBase) {
  QueryRegistry reg(RegistryOptions());
  std::string err;
  ASSERT_NE(reg.Register({{"tumbling:5"}, {"sum"}}, &err),
            QueryRegistry::kInvalidQuery);
  // tumbling:10 is itself a fold over tumbling:5 (2 combines per window):
  // the rewrite applies to coarser tumblings too, so no engine window is
  // added for it.
  const auto q10 = reg.Register({{"tumbling:10"}, {"sum"}}, &err);
  ASSERT_NE(q10, QueryRegistry::kInvalidQuery) << err;
  EXPECT_EQ(reg.Plan(q10).windows[0], QueryRegistry::PlanKind::kDerived);
  EXPECT_EQ(reg.EngineWindows(), 1u);

  const auto q =
      reg.Register({{"sliding:40:20", "tumbling:40"}, {"sum"}}, &err);
  ASSERT_NE(q, QueryRegistry::kInvalidQuery) << err;
  const QueryRegistry::QueryPlan p = reg.Plan(q);
  // Both fold over the only engine base (tumbling:5 — derived windows are
  // not themselves eligible bases); still no new engine windows.
  EXPECT_EQ(p.windows[0], QueryRegistry::PlanKind::kDerived);
  EXPECT_EQ(p.windows[1], QueryRegistry::PlanKind::kDerived);
  EXPECT_EQ(reg.EngineWindows(), 1u);

  // When two eligible bases exist the largest granule (fewest combines)
  // wins: with rewrites off, tumbling:12 registers natively, and a later
  // sliding:48:24 folds over granule 12, not 5... observable as plan kind
  // here and as fold cost in the benchmark.
  QueryRegistry reg2(RegistryOptions());
  ASSERT_NE(reg2.Register({{"tumbling:5", "tumbling:12"}, {"sum"}}, &err),
            QueryRegistry::kInvalidQuery);
  EXPECT_EQ(reg2.EngineWindows(), 2u);  // 12 % 5 != 0: both are native
  const auto q48 = reg2.Register({{"sliding:48:24"}, {"sum"}}, &err);
  ASSERT_NE(q48, QueryRegistry::kInvalidQuery) << err;
  EXPECT_EQ(reg2.Plan(q48).windows[0], QueryRegistry::PlanKind::kDerived);
  EXPECT_EQ(reg2.EngineWindows(), 2u);
}

TEST(RegistryPlanning, RewriteRespectsFanInBound) {
  QueryRegistry::Options o = RegistryOptions();
  o.max_rewrite_fan_in = 3;
  QueryRegistry reg(o);
  std::string err;
  ASSERT_NE(reg.Register({{"tumbling:10"}, {"sum"}}, &err),
            QueryRegistry::kInvalidQuery);
  // L/g = 40/10 = 4 > 3: the fold is too wide, register natively.
  const auto q = reg.Register({{"sliding:40:20"}, {"sum"}}, &err);
  ASSERT_NE(q, QueryRegistry::kInvalidQuery) << err;
  EXPECT_EQ(reg.Plan(q).windows[0], QueryRegistry::PlanKind::kShared);
  EXPECT_EQ(reg.EngineWindows(), 2u);
}

TEST(RegistryPlanning, RejectsBadDefs) {
  QueryRegistry reg(RegistryOptions());
  std::string err;
  EXPECT_EQ(reg.Register({{}, {"sum"}}, &err), QueryRegistry::kInvalidQuery);
  EXPECT_EQ(reg.Register({{"tumbling:10"}, {}}, &err),
            QueryRegistry::kInvalidQuery);
  EXPECT_EQ(reg.Register({{"bogus:1"}, {"sum"}}, &err),
            QueryRegistry::kInvalidQuery);
  EXPECT_NE(err.find("bogus"), std::string::npos) << err;
  EXPECT_EQ(reg.Register({{"tumbling:10"}, {"no-such-agg"}}, &err),
            QueryRegistry::kInvalidQuery);
  // Nothing half-registered sticks around after a failed registration.
  EXPECT_EQ(reg.ActiveQueries(), 0u);
  EXPECT_EQ(reg.EngineWindows(), 0u);
}

// ---------------------------------------------------------------------------
// Equivalence: registry vs. one dedicated operator per query.

/// Registers all queries, runs the shared registry once over `tuples`, and
/// checks every query against dedicated operators of every technique.
void CheckSharedAgainstIndependent(const std::vector<QueryDef>& defs,
                                   const std::vector<Tuple>& tuples,
                                   bool in_order, bool rewrites = true) {
  QueryRegistry reg(RegistryOptions(in_order, rewrites));
  std::vector<QueryRegistry::QueryId> ids;
  std::string err;
  for (const QueryDef& def : defs) {
    const auto id = reg.Register(def, &err);
    ASSERT_NE(id, QueryRegistry::kInvalidQuery) << err;
    ids.push_back(id);
  }

  const Time max_ts = MaxTs(tuples);
  const Time final_wm = max_ts + 100;
  const int wm_every = 16;
  // In-order ops run with allowed_lateness 0: keep the watermark strictly
  // behind any timestamp that can still arrive (punctuation markers share
  // the preceding tuple's timestamp) so nothing is boundary-dropped.
  const Time wm_lag = in_order ? 2 : 64;

  const auto shared =
      RunRegistryToFinal(reg, ids, tuples, final_wm, wm_every, wm_lag);

  for (size_t qi = 0; qi < defs.size(); ++qi) {
    const QueryDef& def = defs[qi];
    const auto shared_it = shared.find(ids[qi]);
    const FinalMap got =
        shared_it != shared.end() ? shared_it->second : FinalMap{};
    const std::string tag = "query " + std::to_string(qi);

    auto lazy = BuildGSO(def, StoreMode::kLazy, in_order);
    ExpectQueryMatches(
        got, RunToFinalResults(*lazy, tuples, final_wm, wm_every, wm_lag),
        def.aggs, tag + " vs gso-lazy");

    auto eager = BuildGSO(def, StoreMode::kEager, in_order);
    ExpectQueryMatches(
        got, RunToFinalResults(*eager, tuples, final_wm, wm_every, wm_lag),
        def.aggs, tag + " vs gso-eager");

    // Baseline applicability mirrors the differential harness: the buffer
    // and tree baselines model everything but lastn; buckets additionally
    // exclude punctuation and frame windows.
    bool has_punct = false, has_lastn = false, has_frames = false;
    for (const std::string& text : def.windows) {
      WindowDesc d;
      ASSERT_TRUE(WindowDesc::Parse(text, &d)) << text;
      has_punct |= d.kind == WindowDesc::Kind::kPunctuation;
      has_lastn |= d.kind == WindowDesc::Kind::kLastNEveryT;
      has_frames |= d.kind == WindowDesc::Kind::kThresholdFrame;
    }
    if (!has_lastn) {
      auto buf = BuildBaseline<TupleBufferOperator>(def, in_order);
      ExpectQueryMatches(
          got, RunToFinalResults(*buf, tuples, final_wm, wm_every, wm_lag),
          def.aggs, tag + " vs tuple-buffer");

      auto tree = BuildBaseline<AggregateTreeOperator>(def, in_order);
      ExpectQueryMatches(
          got, RunToFinalResults(*tree, tuples, final_wm, wm_every, wm_lag),
          def.aggs, tag + " vs aggregate-tree");
    }
    if (!has_punct && !has_lastn && !has_frames) {
      auto buckets = BuildBaseline<BucketsOperator>(def, in_order);
      ExpectQueryMatches(
          got,
          RunToFinalResults(*buckets, tuples, final_wm, wm_every, wm_lag),
          def.aggs, tag + " vs buckets");
    }
  }
}

TEST(SharedEquivalence, OutOfOrderAcrossTechniques) {
  const std::vector<QueryDef> defs = {
      {{"tumbling:10", "session:7"}, {"sum", "min"}},
      {{"sliding:20:5", "punct"}, {"count", "avg"}},
      // tumbling:10 dedups against query 0; sliding:40:20 derives from it.
      {{"tumbling:10", "sliding:40:20"}, {"max", "median"}},
  };
  CheckSharedAgainstIndependent(defs, OOOStream(7, 400, /*punct=*/0.05),
                                /*in_order=*/false);
}

TEST(SharedEquivalence, InOrderFastPath) {
  StreamSpec spec;
  spec.seed = 11;
  spec.num_tuples = 400;
  spec.punctuation_probability = 0.05;
  const std::vector<QueryDef> defs = {
      {{"tumbling:10", "punct"}, {"sum", "count"}},
      {{"sliding:30:10", "tumbling:10"}, {"min", "max"}},
  };
  CheckSharedAgainstIndependent(defs, GenerateStream(spec),
                                /*in_order=*/true);
}

// Batched and columnar in-order ingestion take a no-late-mirroring fast
// path when the batch is sorted (the bench-critical route for derived
// plans); duplicate timestamps tying the per-tuple watermark at window
// edges must still produce results bit-identical to per-tuple ingestion.
TEST(SharedEquivalence, BatchedAndColumnarInOrderMatchPerTuple) {
  const std::vector<QueryDef> defs = {
      {{"tumbling:10"}, {"sum", "count"}},
      // tumbling:10 dedups against query 0; the others derive from it.
      {{"sliding:40:20", "tumbling:10"}, {"sum"}},
      {{"tumbling:30"}, {"count"}},
  };
  std::vector<Tuple> tuples;
  for (int i = 0; i < 600; ++i) {
    // Three tuples per timestamp: every trigger-edge crossing leaves
    // same-ts stragglers that tie the advanced watermark.
    tuples.push_back(T(i / 3, (i % 17) - 8));
  }
  const Time final_wm = MaxTs(tuples) + 100;
  const int wm_every = 16;
  const Time wm_lag = 2;

  auto register_all = [&](QueryRegistry& reg,
                          std::vector<QueryRegistry::QueryId>* ids) {
    std::string err;
    for (const QueryDef& def : defs) {
      const auto id = reg.Register(def, &err);
      ASSERT_NE(id, QueryRegistry::kInvalidQuery) << err;
      ids->push_back(id);
    }
  };

  QueryRegistry per_tuple(RegistryOptions(/*in_order=*/true));
  std::vector<QueryRegistry::QueryId> pt_ids;
  register_all(per_tuple, &pt_ids);
  const auto want =
      RunRegistryToFinal(per_tuple, pt_ids, tuples, final_wm, wm_every, wm_lag);

  // Same watermark cadence, but tuples arrive as the blocks between
  // watermarks — via ProcessTupleBatch and via ProcessTupleColumns.
  for (const bool columnar : {false, true}) {
    QueryRegistry reg(RegistryOptions(/*in_order=*/true));
    std::vector<QueryRegistry::QueryId> ids;
    register_all(reg, &ids);
    std::map<QueryRegistry::QueryId, FinalMap> got;
    auto drain = [&] {
      for (QueryRegistry::QueryId id : ids) {
        for (const WindowResult& r : reg.TakeQueryResults(id)) {
          got[id][{r.window_id, r.agg_id, r.start, r.end}] = r.value;
        }
      }
    };
    std::vector<Tuple> block;
    std::vector<Time> ts_col;
    std::vector<double> val_col;
    std::vector<int64_t> key_col;
    std::vector<uint64_t> seq_col;
    auto flush = [&] {
      if (block.empty()) return;
      if (columnar) {
        ts_col.clear(), val_col.clear(), key_col.clear(), seq_col.clear();
        for (const Tuple& t : block) {
          ts_col.push_back(t.ts);
          val_col.push_back(t.value);
          key_col.push_back(t.key);
          seq_col.push_back(t.seq);
        }
        reg.ProcessTupleColumns({ts_col.data(), val_col.data(), key_col.data(),
                                 seq_col.data(), nullptr, block.size()});
      } else {
        reg.ProcessTupleBatch(block);
      }
      block.clear();
    };
    uint64_t seq = 0;
    Time max_ts = kNoTime;
    Time last_wm = kNoTime;
    for (Tuple t : tuples) {
      t.seq = seq++;
      block.push_back(t);
      max_ts = std::max(max_ts, t.ts);
      if (seq % wm_every == 0) {
        const Time wm = max_ts - wm_lag;
        if (wm > last_wm || last_wm == kNoTime) {
          flush();
          reg.ProcessWatermark(wm);
          last_wm = wm;
          drain();
        }
      }
    }
    flush();
    reg.ProcessWatermark(final_wm);
    drain();

    for (size_t qi = 0; qi < defs.size(); ++qi) {
      const auto want_it = want.find(pt_ids[qi]);
      const auto got_it = got.find(ids[qi]);
      ExpectQueryMatches(
          got_it != got.end() ? got_it->second : FinalMap{},
          want_it != want.end() ? want_it->second : FinalMap{}, defs[qi].aggs,
          (columnar ? "columnar" : "batched") + std::string(" query ") +
              std::to_string(qi));
    }
  }
}

TEST(SharedEquivalence, CountWindowsAndMultiMeasure) {
  const std::vector<QueryDef> defs = {
      {{"ctumbling:25", "tumbling:15"}, {"sum", "count"}},
      {{"csliding:30:10", "lastn:20:15"}, {"min", "avg"}},
      {{"frames:12", "ctumbling:25"}, {"max", "sum"}},
  };
  CheckSharedAgainstIndependent(defs, OOOStream(13, 400),
                                /*in_order=*/false);
}

TEST(SharedEquivalence, AllAggregateKinds) {
  // Every deterministic aggregation the fuzzer draws from, split over two
  // queries that share both windows (full dedup) plus one derived window.
  const std::vector<std::string> all = {
      "sum",     "count",     "avg",       "min",
      "max",     "median",    "p90",       "m4",
      "arg-max", "arg-min",   "min-count", "max-count",
      "stddev",  "sum-no-invert", "concat", "geometric-mean"};
  const std::vector<std::string> first(all.begin(), all.begin() + 8);
  const std::vector<std::string> second(all.begin() + 8, all.end());
  const std::vector<QueryDef> defs = {
      {{"tumbling:10", "sliding:30:10"}, first},
      {{"sliding:30:10", "tumbling:10", "tumbling:40"}, second},
  };
  CheckSharedAgainstIndependent(defs, OOOStream(17, 350),
                                /*in_order=*/false);
}

TEST(SharedEquivalence, RewriteAblationMatches) {
  // The same query set with rewrites disabled must produce the same
  // answers — kDerived is purely a cost optimization.
  const std::vector<QueryDef> defs = {
      {{"tumbling:10"}, {"sum", "median"}},
      {{"sliding:40:20", "tumbling:20"}, {"sum", "max"}},
  };
  const std::vector<Tuple> tuples = OOOStream(23, 400);
  CheckSharedAgainstIndependent(defs, tuples, /*in_order=*/false,
                                /*rewrites=*/true);
  CheckSharedAgainstIndependent(defs, tuples, /*in_order=*/false,
                                /*rewrites=*/false);

  QueryRegistry ablated(RegistryOptions(false, /*rewrites=*/false));
  std::string err;
  ASSERT_NE(ablated.Register(defs[0], &err), QueryRegistry::kInvalidQuery);
  const auto q = ablated.Register(defs[1], &err);
  ASSERT_NE(q, QueryRegistry::kInvalidQuery) << err;
  EXPECT_EQ(ablated.Plan(q).windows[0], QueryRegistry::PlanKind::kShared);
}

// ---------------------------------------------------------------------------
// Dynamic membership.

TEST(RegistryDynamics, MidStreamRegisterSeesOnlyPostHorizonWindows) {
  const std::vector<Tuple> tuples = OOOStream(31, 400);
  const Time max_ts = MaxTs(tuples);
  const Time final_wm = max_ts + 100;
  const QueryDef base{{"tumbling:10"}, {"sum", "max"}};
  const QueryDef late{{"sliding:30:10", "tumbling:25"}, {"sum"}};

  QueryRegistry reg(RegistryOptions());
  std::string err;
  const auto q0 = reg.Register(base, &err);
  ASSERT_NE(q0, QueryRegistry::kInvalidQuery) << err;

  std::map<QueryRegistry::QueryId, FinalMap> got;
  auto drain = [&](const std::vector<QueryRegistry::QueryId>& ids) {
    for (auto id : ids) {
      for (const WindowResult& r : reg.TakeQueryResults(id)) {
        got[id][{r.window_id, r.agg_id, r.start, r.end}] = r.value;
      }
    }
  };

  QueryRegistry::QueryId q1 = QueryRegistry::kInvalidQuery;
  uint64_t seq = 0;
  Time seen = kNoTime;
  Time last_wm = kNoTime;
  for (Tuple t : tuples) {
    if (seq == tuples.size() / 2) {
      q1 = reg.Register(late, &err);
      ASSERT_NE(q1, QueryRegistry::kInvalidQuery) << err;
    }
    t.seq = seq++;
    reg.ProcessTuple(t);
    seen = std::max(seen, t.ts);
    if (seq % 16 == 0) {
      const Time wm = seen - 64;
      if (wm > last_wm || last_wm == kNoTime) {
        reg.ProcessWatermark(wm);
        last_wm = wm;
        drain({q0, q1});
      }
    }
  }
  reg.ProcessWatermark(final_wm);
  drain({q0, q1});

  const Time horizon = reg.Plan(q1).horizon;
  ASSERT_NE(horizon, kNoTime);
  EXPECT_GT(horizon, 0);

  // The early query is untouched by the membership change.
  auto full = BuildGSO(base, StoreMode::kLazy, false);
  ExpectQueryMatches(got[q0],
                     RunToFinalResults(*full, tuples, final_wm, 16, 64),
                     base.aggs, "pre-registered query");

  // The late query answers exactly the dedicated-operator results filtered
  // to windows that start at or after its horizon.
  auto solo = BuildGSO(late, StoreMode::kLazy, false);
  FinalMap expect;
  for (const auto& [key, val] :
       RunToFinalResults(*solo, tuples, final_wm, 16, 64)) {
    if (std::get<2>(key) >= horizon) expect[key] = val;
  }
  ExpectQueryMatches(got[q1], expect, late.aggs, "mid-stream query");
  // And it genuinely reported something: the horizon is not an excuse to
  // stay silent forever.
  EXPECT_FALSE(got[q1].empty());
}

TEST(RegistryDynamics, DeregisterDropsOnlyThatQuery) {
  const std::vector<Tuple> tuples = OOOStream(37, 400);
  const Time max_ts = MaxTs(tuples);
  const Time final_wm = max_ts + 100;
  const QueryDef keep{{"tumbling:10", "session:7"}, {"sum", "median"}};
  const QueryDef drop{{"tumbling:10", "sliding:20:10"}, {"max"}};

  QueryRegistry reg(RegistryOptions());
  std::string err;
  const auto qk = reg.Register(keep, &err);
  const auto qd = reg.Register(drop, &err);
  ASSERT_NE(qk, QueryRegistry::kInvalidQuery);
  ASSERT_NE(qd, QueryRegistry::kInvalidQuery);
  // tumbling:10 is shared between both and sliding:20:10 folds over it, so
  // the second query added no engine windows at all.
  EXPECT_EQ(reg.Plan(qd).windows[0], QueryRegistry::PlanKind::kSharedDedup);
  EXPECT_EQ(reg.Plan(qd).windows[1], QueryRegistry::PlanKind::kDerived);
  EXPECT_EQ(reg.EngineWindows(), 2u);

  FinalMap kept;
  uint64_t seq = 0;
  Time seen = kNoTime;
  Time last_wm = kNoTime;
  for (Tuple t : tuples) {
    if (seq == tuples.size() / 2) {
      ASSERT_TRUE(reg.Deregister(qd));
      EXPECT_FALSE(reg.Deregister(qd));  // idempotence: already gone
      EXPECT_FALSE(reg.Plan(qd).alive);
      // tumbling:10 lives on for the surviving query.
      EXPECT_EQ(reg.EngineWindows(), 2u);
      EXPECT_EQ(reg.ActiveQueries(), 1u);
    }
    t.seq = seq++;
    reg.ProcessTuple(t);
    seen = std::max(seen, t.ts);
    if (seq % 16 == 0) {
      const Time wm = seen - 64;
      if (wm > last_wm || last_wm == kNoTime) {
        reg.ProcessWatermark(wm);
        last_wm = wm;
        for (const WindowResult& r : reg.TakeQueryResults(qk)) {
          kept[{r.window_id, r.agg_id, r.start, r.end}] = r.value;
        }
        // After the deregistration nothing leaks out under the dead id.
        if (seq > tuples.size() / 2) {
          EXPECT_TRUE(reg.TakeQueryResults(qd).empty());
        }
      }
    }
  }
  reg.ProcessWatermark(final_wm);
  for (const WindowResult& r : reg.TakeQueryResults(qk)) {
    kept[{r.window_id, r.agg_id, r.start, r.end}] = r.value;
  }

  auto solo = BuildGSO(keep, StoreMode::kLazy, false);
  ExpectQueryMatches(kept, RunToFinalResults(*solo, tuples, final_wm, 16, 64),
                     keep.aggs, "surviving query");

  // The registry stays open for business after a deregistration.
  const auto q2 = reg.Register({{"tumbling:50"}, {"sum"}}, &err);
  EXPECT_NE(q2, QueryRegistry::kInvalidQuery) << err;
}

TEST(RegistryDynamics, MidStreamRegistrationLimits) {
  QueryRegistry reg(RegistryOptions());
  std::string err;
  ASSERT_NE(reg.Register({{"tumbling:10"}, {"sum"}}, &err),
            QueryRegistry::kInvalidQuery);
  reg.ProcessTuple(T(5, 1.0));

  // Context-sensitive windows cannot join mid-stream...
  EXPECT_EQ(reg.Register({{"session:7"}, {"sum"}}, &err),
            QueryRegistry::kInvalidQuery);
  EXPECT_NE(err.find("mid-stream"), std::string::npos) << err;
  // ...nor can new aggregation columns be added to a started store...
  EXPECT_EQ(reg.Register({{"tumbling:20"}, {"median"}}, &err),
            QueryRegistry::kInvalidQuery);
  // ...but context-free windows over known aggregations can.
  EXPECT_NE(reg.Register({{"sliding:30:10"}, {"sum"}}, &err),
            QueryRegistry::kInvalidQuery)
      << err;
}

// ---------------------------------------------------------------------------
// Global result stream.

TEST(RegistryResults, TakeResultsUsesDenseGlobalWindowIds) {
  const std::vector<Tuple> tuples = OOOStream(41, 200);
  const Time final_wm = MaxTs(tuples) + 100;
  const QueryDef a{{"tumbling:10", "session:7"}, {"sum"}};
  const QueryDef b{{"tumbling:10"}, {"max", "count"}};

  QueryRegistry reg(RegistryOptions());
  std::string err;
  const auto qa = reg.Register(a, &err);
  const auto qb = reg.Register(b, &err);
  ASSERT_NE(qa, QueryRegistry::kInvalidQuery);
  ASSERT_NE(qb, QueryRegistry::kInvalidQuery);
  EXPECT_EQ(reg.GlobalWindowId(qa, 0), 0);
  EXPECT_EQ(reg.GlobalWindowId(qa, 1), 1);
  EXPECT_EQ(reg.GlobalWindowId(qb, 0), 2);

  uint64_t seq = 0;
  for (Tuple t : tuples) {
    t.seq = seq++;
    reg.ProcessTuple(t);
  }
  reg.ProcessWatermark(final_wm);
  const FinalMap merged = testutil::FinalResults(reg.TakeResults());
  ASSERT_FALSE(merged.empty());

  // Recompute per query and re-key through GlobalWindowId: the merged view
  // is exactly the union (agg ids stay local; window ids disambiguate).
  FinalMap expect;
  for (const auto& [def, id] :
       std::vector<std::pair<QueryDef, QueryRegistry::QueryId>>{{a, qa},
                                                                {b, qb}}) {
    auto solo = BuildGSO(def, StoreMode::kLazy, false);
    for (const auto& [key, val] :
         RunToFinalResults(*solo, tuples, final_wm, 0, 0)) {
      expect[{reg.GlobalWindowId(id, std::get<0>(key)), std::get<1>(key),
              std::get<2>(key), std::get<3>(key)}] = val;
    }
  }
  EXPECT_EQ(merged, expect);
}

// ---------------------------------------------------------------------------
// QueryBuilder front-end.

TEST(RegistryBuilder, PortableBuilderRegisters) {
  QueryBuilder b;
  b.OutOfOrder(kLateness)
      .Aggregate("sum")
      .Aggregate("median")
      .Tumbling(10)
      .Sliding(30, 10);
  ASSERT_TRUE(b.HasPortableDef());
  EXPECT_EQ(b.Def().windows,
            (std::vector<std::string>{"tumbling:10", "sliding:30:10"}));
  EXPECT_EQ(b.Def().aggs, (std::vector<std::string>{"sum", "median"}));

  const std::vector<Tuple> tuples = OOOStream(43, 250);
  const Time final_wm = MaxTs(tuples) + 100;

  QueryRegistry reg(RegistryOptions());
  std::string err;
  const auto q = reg.Register(b, &err);
  ASSERT_NE(q, QueryRegistry::kInvalidQuery) << err;

  const auto shared =
      RunRegistryToFinal(reg, {q}, tuples, final_wm, 16, 64);
  auto solo = b.Build();
  ExpectQueryMatches(shared.at(q),
                     RunToFinalResults(*solo, tuples, final_wm, 16, 64),
                     b.Def().aggs, "builder query");
}

TEST(RegistryBuilder, CustomObjectsForfeitPortability) {
  QueryBuilder b;
  b.Aggregate(MakeAggregation("sum")).Tumbling(10);  // custom fn object
  EXPECT_FALSE(b.HasPortableDef());
  QueryRegistry reg(RegistryOptions());
  std::string err;
  EXPECT_EQ(reg.Register(b, &err), QueryRegistry::kInvalidQuery);
  EXPECT_NE(err.find("textual description"), std::string::npos) << err;
}

// ---------------------------------------------------------------------------
// Snapshot round-trip.

TEST(RegistrySnapshot, CheckpointedTwinIsBitIdentical) {
  const std::vector<QueryDef> defs = {
      {{"tumbling:10", "session:7"}, {"sum", "median"}},
      {{"sliding:40:20", "tumbling:10"}, {"max", "sum"}},
  };
  const std::vector<Tuple> tuples = OOOStream(47, 400);
  const Time final_wm = MaxTs(tuples) + 100;

  auto factory = [&]() -> std::unique_ptr<WindowOperator> {
    auto reg = std::make_unique<QueryRegistry>(RegistryOptions());
    std::string err;
    for (const QueryDef& def : defs) {
      EXPECT_NE(reg->Register(def, &err), QueryRegistry::kInvalidQuery)
          << err;
    }
    return reg;
  };

  auto plain = factory();
  const FinalMap expect =
      RunToFinalResults(*plain, tuples, final_wm, 16, 64);

  for (size_t cut : {size_t{1}, tuples.size() / 3, tuples.size() / 2,
                     tuples.size() - 1}) {
    FinalMap got;
    std::string error;
    ASSERT_TRUE(testing::RunToFinalResultsCheckpointed(
        factory, tuples, final_wm, 16, 64, cut, &got, &error))
        << "cut=" << cut << ": " << error;
    EXPECT_EQ(got, expect) << "cut=" << cut;  // exact, median included
  }
}

TEST(RegistrySnapshot, RestorePreservesDynamicMembership) {
  // Register -> feed -> deregister one -> register mid-stream -> snapshot
  // -> restore onto a fresh registry -> both must finish identically.
  const std::vector<Tuple> tuples = OOOStream(53, 300);
  const Time final_wm = MaxTs(tuples) + 100;
  const size_t cut = tuples.size() * 2 / 3;

  auto drive_prefix = [&](QueryRegistry& reg, FinalMap* out,
                          std::vector<QueryRegistry::QueryId>* ids) {
    std::string err;
    ids->push_back(reg.Register({{"tumbling:10"}, {"sum", "max"}}, &err));
    ids->push_back(
        reg.Register({{"tumbling:10", "session:9"}, {"sum"}}, &err));
    uint64_t seq = 0;
    Time seen = kNoTime;
    Time last_wm = kNoTime;
    for (size_t i = 0; i < cut; ++i) {
      if (i == tuples.size() / 3) {
        ASSERT_TRUE(reg.Deregister((*ids)[1]));
        ids->push_back(
            reg.Register({{"sliding:30:10"}, {"sum"}}, &err));
        ASSERT_NE(ids->back(), QueryRegistry::kInvalidQuery) << err;
      }
      Tuple t = tuples[i];
      t.seq = seq++;
      reg.ProcessTuple(t);
      seen = std::max(seen, t.ts);
      if (seq % 16 == 0 && (seen - 64 > last_wm || last_wm == kNoTime)) {
        last_wm = seen - 64;
        reg.ProcessWatermark(last_wm);
        for (const WindowResult& r : reg.TakeResults()) {
          (*out)[{r.window_id, r.agg_id, r.start, r.end}] = r.value;
        }
      }
    }
  };

  auto drive_suffix = [&](QueryRegistry& reg, FinalMap* out,
                          uint64_t seq, Time seen, Time last_wm) {
    for (size_t i = cut; i < tuples.size(); ++i) {
      Tuple t = tuples[i];
      t.seq = seq++;
      reg.ProcessTuple(t);
      seen = std::max(seen, t.ts);
      if (seq % 16 == 0 && (seen - 64 > last_wm || last_wm == kNoTime)) {
        last_wm = seen - 64;
        reg.ProcessWatermark(last_wm);
        for (const WindowResult& r : reg.TakeResults()) {
          (*out)[{r.window_id, r.agg_id, r.start, r.end}] = r.value;
        }
      }
    }
    reg.ProcessWatermark(final_wm);
    for (const WindowResult& r : reg.TakeResults()) {
      (*out)[{r.window_id, r.agg_id, r.start, r.end}] = r.value;
    }
  };

  // Uninterrupted run.
  QueryRegistry full(RegistryOptions());
  FinalMap want;
  std::vector<QueryRegistry::QueryId> ids;
  drive_prefix(full, &want, &ids);
  {
    // Recover the harness locals the prefix ended with.
    uint64_t seq = cut;
    Time seen = kNoTime;
    for (size_t i = 0; i < cut; ++i) seen = std::max(seen, tuples[i].ts);
    Time last_wm = kNoTime;
    for (size_t s = 16; s <= cut; s += 16) {
      Time m = kNoTime;
      for (size_t i = 0; i < s; ++i) m = std::max(m, tuples[i].ts);
      if (m - 64 > last_wm || last_wm == kNoTime) last_wm = m - 64;
    }
    drive_suffix(full, &want, seq, seen, last_wm);
  }

  // Interrupted twin: snapshot at the cut, restore onto a fresh registry
  // with the same Options and nothing registered.
  QueryRegistry head(RegistryOptions());
  FinalMap got;
  std::vector<QueryRegistry::QueryId> head_ids;
  drive_prefix(head, &got, &head_ids);
  state::Writer w;
  head.SerializeState(w);
  const std::vector<uint8_t> bytes = w.Take();

  QueryRegistry tail(RegistryOptions());
  state::Reader r(bytes);
  tail.DeserializeState(r);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r.AtEnd());
  EXPECT_EQ(tail.ActiveQueries(), head.ActiveQueries());
  {
    uint64_t seq = cut;
    Time seen = kNoTime;
    for (size_t i = 0; i < cut; ++i) seen = std::max(seen, tuples[i].ts);
    Time last_wm = kNoTime;
    for (size_t s = 16; s <= cut; s += 16) {
      Time m = kNoTime;
      for (size_t i = 0; i < s; ++i) m = std::max(m, tuples[i].ts);
      if (m - 64 > last_wm || last_wm == kNoTime) last_wm = m - 64;
    }
    drive_suffix(tail, &got, seq, seen, last_wm);
  }
  EXPECT_EQ(got, want);

  // Restoring with different Options must fail loudly, not half-apply.
  QueryRegistry wrong(RegistryOptions(false, /*rewrites=*/false));
  state::Reader r2(bytes);
  wrong.DeserializeState(r2);
  EXPECT_FALSE(r2.ok());
}

}  // namespace
}  // namespace scotty
