#ifndef SCOTTY_TESTS_TEST_UTIL_H_
#define SCOTTY_TESTS_TEST_UTIL_H_

// Thin re-export of the shared testing library (src/testing/). The helpers
// used to live here; they moved so the differential fuzzing harness and the
// gtest suites exercise the exact same oracle and stream machinery.

#include "common/value.h"
#include "testing/harness.h"
#include "testing/oracle.h"
#include "testing/stream_gen.h"

namespace scotty {
namespace testutil {

using testing::BruteForce;
using testing::BruteForceCount;
using testing::FinalResults;
using testing::ResultKey;
using testing::RunStream;
using testing::RunToFinalResults;
using testing::T;

/// Numeric comparison helper tolerant of both int64 and double payloads.
inline double Num(const Value& v) { return v.Numeric(); }

}  // namespace testutil
}  // namespace scotty

#endif  // SCOTTY_TESTS_TEST_UTIL_H_
