#ifndef SCOTTY_TESTING_STREAM_GEN_H_
#define SCOTTY_TESTING_STREAM_GEN_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/time.h"
#include "common/tuple.h"

namespace scotty {
namespace testing {

/// One parameterized random-stream family shared by the property,
/// equivalence, soak, and differential-fuzzing suites. Every test stream in
/// the repo is a point in this space; a (spec, seed) pair regenerates the
/// exact same arrival sequence, which is what makes fuzz failures
/// replayable from a one-line reproducer.
///
/// Generation has two phases:
///  1. An in-order event-time sequence: per tuple the timestamp advances by
///     a uniform step in [step_lo, step_hi], occasionally jumping by
///     `gap_length` (session inactivity gaps). Values are small integers in
///     [0, value_range) so that partial aggregates are exactly
///     representable and results are bit-identical across fold orders.
///     Punctuation markers are optionally emitted at the current timestamp
///     (sharing it with the preceding data tuple — the hard case for slice
///     splitting).
///  2. Bounded-disorder injection: each tuple is either forwarded or held
///     until the in-order timestamp passes `its ts + 1 + delay` with
///     delay < max_delay (the paper's bounded-delay OOO model). A burst
///     holds a whole run of consecutive tuples with one shared release
///     point, modelling a stalled upstream partition.
struct StreamSpec {
  uint64_t seed = 1;
  int num_tuples = 300;

  /// In-order phase.
  Time step_lo = 1;
  Time step_hi = 4;
  double gap_probability = 0.0;
  Time gap_length = 50;
  uint64_t value_range = 20;
  double punctuation_probability = 0.0;
  int64_t num_keys = 1;

  /// Disorder phase.
  double ooo_fraction = 0.0;
  Time max_delay = 0;
  double burst_probability = 0.0;
  int burst_length = 8;

  /// Upper bound on how far behind the running maximum timestamp any
  /// arrival can be. Watermarks lagging by at least this much never drop
  /// tuples, which the differential harness relies on (the brute-force
  /// oracle does not model drops).
  Time MaxLateness() const {
    Time lateness = max_delay + step_hi + 2;
    if (gap_probability > 0) lateness += gap_length;
    return lateness;
  }
};

/// Deterministically generates the arrival sequence for `spec`.
std::vector<Tuple> GenerateStream(const StreamSpec& spec);

}  // namespace testing
}  // namespace scotty

#endif  // SCOTTY_TESTING_STREAM_GEN_H_
