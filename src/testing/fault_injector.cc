#include "testing/fault_injector.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <system_error>

#include "common/rng.h"
#include "runtime/checkpoint.h"

namespace scotty {
namespace testing {

FaultPlan MakeFaultPlan(uint64_t seed, size_t num_tuples) {
  Rng rng(seed * 0x9E3779B97F4A7C15ULL + 0x94D049BB133111EBULL);
  FaultPlan plan;
  plan.crash_index =
      num_tuples == 0 ? 0 : 1 + rng.NextBounded(static_cast<uint64_t>(num_tuples));
  switch (rng.NextBounded(4)) {
    case 0:
    case 1:
      plan.fault = SnapshotFault::kNone;
      break;
    case 2:
      plan.fault = SnapshotFault::kTruncate;
      break;
    default:
      plan.fault = SnapshotFault::kBitFlip;
      break;
  }
  plan.fault_arg = rng.NextU64();
  return plan;
}

bool ApplySnapshotFault(const std::string& path, const FaultPlan& plan) {
  namespace fs = std::filesystem;
  if (plan.fault == SnapshotFault::kNone) return true;
  std::error_code ec;
  const uintmax_t size = fs::file_size(path, ec);
  if (ec) return false;
  if (size == 0) return true;
  if (plan.fault == SnapshotFault::kTruncate) {
    // Torn write: the file ends mid-payload. Damage is applied in place —
    // it models a sector-level tear that bypasses the temp+rename protocol.
    fs::resize_file(path, plan.fault_arg % size, ec);
    return !ec;
  }
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  if (f == nullptr) return false;
  const long off = static_cast<long>(plan.fault_arg % size);
  unsigned char byte = 0;
  bool ok =
      std::fseek(f, off, SEEK_SET) == 0 && std::fread(&byte, 1, 1, f) == 1;
  if (ok) {
    byte ^= static_cast<unsigned char>(1u << ((plan.fault_arg >> 56) & 7));
    ok = std::fseek(f, off, SEEK_SET) == 0 && std::fwrite(&byte, 1, 1, f) == 1;
  }
  std::fclose(f);
  return ok;
}

namespace {

void DrainInto(WindowOperator& op, std::map<ResultKey, Value>* out) {
  for (const WindowResult& r : op.TakeResults()) {
    (*out)[{r.window_id, r.agg_id, r.start, r.end}] = r.value;
  }
}

}  // namespace

bool RunToFinalResultsCrashRecovered(
    const std::function<std::unique_ptr<WindowOperator>()>& factory,
    const std::vector<Tuple>& tuples, Time final_wm, int wm_every, Time wm_lag,
    const FaultPlan& plan, const std::string& scratch_dir,
    std::map<ResultKey, Value>* out, std::string* error,
    CrashRunStats* stats) {
  namespace fs = std::filesystem;
  out->clear();
  std::error_code ec;
  fs::remove_all(scratch_dir, ec);
  ec.clear();
  fs::create_directories(scratch_dir, ec);
  if (ec) {
    *error = "cannot create scratch dir " + scratch_dir;
    return false;
  }

  CheckpointOptions copts;
  copts.directory = scratch_dir;
  copts.prefix = "ckpt";
  copts.retain = 3;
  CheckpointCoordinator coord(copts);

  std::unique_ptr<WindowOperator> op = factory();
  if (!op->SupportsSnapshot()) {
    *error = "operator does not support snapshots";
    return false;
  }

  // Phase one: run until the crash, checkpointing at every watermark
  // barrier. `delivered` models output already durably consumed downstream
  // (drained before each barrier, per the ResultSink contract).
  std::map<ResultKey, Value> delivered;
  uint64_t seq = 0;
  Time max_ts = kNoTime;
  Time last_wm = kNoTime;
  const size_t n = tuples.size();
  const size_t crash_at = std::min<size_t>(
      static_cast<size_t>(plan.crash_index), n);
  for (size_t i = 0; i < crash_at; ++i) {
    Tuple t = tuples[i];
    t.seq = seq++;
    op->ProcessTuple(t);
    max_ts = std::max(max_ts, t.ts);
    if (wm_every > 0 && seq % static_cast<uint64_t>(wm_every) == 0) {
      const Time wm = max_ts - wm_lag;
      if (wm > last_wm || last_wm == kNoTime) {
        op->ProcessWatermark(wm);
        last_wm = wm;
        DrainInto(*op, &delivered);
        state::CheckpointMetadata meta;
        meta.source_offset = i + 1;
        meta.next_seq = seq;
        meta.max_ts = max_ts;
        meta.last_wm = last_wm;
        if (coord.OnBarrier(*op, meta).empty()) {
          *error = "checkpoint persist failed at tuple " + std::to_string(i + 1);
          return false;
        }
      }
    }
  }
  if (stats != nullptr) stats->barriers = coord.checkpoints_taken();
  op.reset();  // the crash: all in-memory state is gone

  const std::vector<std::string> snaps =
      ListSnapshots(scratch_dir, copts.prefix);
  if (!snaps.empty() && !ApplySnapshotFault(snaps.front(), plan)) {
    *error = "fault application failed on " + snaps.front();
    return false;
  }

  // Recovery: newest valid snapshot wins; from scratch when none validates.
  size_t resume_at = 0;
  seq = 0;
  max_ts = kNoTime;
  last_wm = kNoTime;
  RecoveredOperator rec = RecoverNewestValid(scratch_dir, copts.prefix, factory);
  if (rec.restored.ok) {
    if (plan.fault != SnapshotFault::kNone && !snaps.empty() &&
        rec.path_used == snaps.front()) {
      *error = "a torn/corrupt snapshot validated: " + snaps.front();
      return false;
    }
    op = std::move(rec.restored.op);
    resume_at = static_cast<size_t>(rec.restored.meta.source_offset);
    seq = rec.restored.meta.next_seq;
    max_ts = rec.restored.meta.max_ts;
    last_wm = rec.restored.meta.last_wm;
    if (stats != nullptr) {
      stats->fell_back = rec.fell_back;
      stats->path_used = rec.path_used;
    }
  } else {
    // From-scratch is only legitimate when every on-disk snapshot was
    // damaged — i.e. at most the one file the plan faulted existed.
    if (!snaps.empty() && plan.fault == SnapshotFault::kNone) {
      *error = "recovery failed with intact snapshots: " + rec.restored.error;
      return false;
    }
    if (snaps.size() >= 2) {
      *error =
          "fallback failed past the damaged newest snapshot: " +
          rec.restored.error;
      return false;
    }
    op = factory();
    if (stats != nullptr) stats->recovered_from_scratch = true;
  }

  // Replay from the barrier (or from scratch) with the identical cadence.
  std::map<ResultKey, Value> replayed;
  for (size_t i = resume_at; i < n; ++i) {
    Tuple t = tuples[i];
    t.seq = seq++;
    op->ProcessTuple(t);
    max_ts = std::max(max_ts, t.ts);
    if (wm_every > 0 && seq % static_cast<uint64_t>(wm_every) == 0) {
      const Time wm = max_ts - wm_lag;
      if (wm > last_wm || last_wm == kNoTime) {
        op->ProcessWatermark(wm);
        last_wm = wm;
        DrainInto(*op, &replayed);
      }
    }
  }
  op->ProcessWatermark(final_wm);
  DrainInto(*op, &replayed);

  // Downstream merge: the recovered run re-emits every result from the
  // barrier onward, so it overrides; entries final before the barrier were
  // already delivered and are never contradicted.
  *out = std::move(delivered);
  for (const auto& [key, value] : replayed) (*out)[key] = value;

  fs::remove_all(scratch_dir, ec);
  return true;
}

}  // namespace testing
}  // namespace scotty
