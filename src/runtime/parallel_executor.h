#ifndef SCOTTY_RUNTIME_PARALLEL_EXECUTOR_H_
#define SCOTTY_RUNTIME_PARALLEL_EXECUTOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "core/window_operator.h"

namespace scotty {

/// Single-producer single-consumer ring buffer carrying tuples and
/// watermarks between the source thread and one worker.
class SpscQueue {
 public:
  explicit SpscQueue(size_t capacity_pow2 = 1 << 14);

  struct Item {
    enum class Kind : uint8_t { kTuple, kWatermark, kStop };
    Kind kind = Kind::kTuple;
    Tuple tuple{};
    Time watermark = kNoTime;
  };

  /// Blocks (spins + yields) while full.
  void Push(const Item& item);
  /// Returns false when empty.
  bool Pop(Item* out);

 private:
  std::vector<Item> ring_;
  size_t mask_;
  alignas(64) std::atomic<uint64_t> head_{0};  // consumer position
  alignas(64) std::atomic<uint64_t> tail_{0};  // producer position
};

/// Key-partitioned parallel execution (paper Section 5.3,
/// "Parallelization", and the scaling experiment of Section 6.4): tuples
/// are routed to workers by key hash, watermarks are broadcast, and every
/// worker runs an independent window-operator instance — the standard
/// intra-node parallelism of Flink/Spark/Storm.
class ParallelExecutor {
 public:
  ParallelExecutor(size_t num_workers,
                   std::function<std::unique_ptr<WindowOperator>()> factory);
  ~ParallelExecutor();

  ParallelExecutor(const ParallelExecutor&) = delete;
  ParallelExecutor& operator=(const ParallelExecutor&) = delete;

  void Start();
  void Push(const Tuple& t);
  void PushWatermark(Time wm);
  /// Sends stop markers, drains, and joins all workers.
  void Finish();

  uint64_t TotalResults() const { return total_results_.load(); }
  size_t MemoryUsageBytes() const;
  size_t num_workers() const { return workers_.size(); }

 private:
  void WorkerLoop(size_t i);

  std::function<std::unique_ptr<WindowOperator>()> factory_;
  std::vector<std::unique_ptr<WindowOperator>> operators_;
  std::vector<std::unique_ptr<SpscQueue>> queues_;
  std::vector<std::thread> workers_;
  std::atomic<uint64_t> total_results_{0};
  bool started_ = false;
  bool finished_ = false;
};

}  // namespace scotty

#endif  // SCOTTY_RUNTIME_PARALLEL_EXECUTOR_H_
