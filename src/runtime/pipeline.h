#ifndef SCOTTY_RUNTIME_PIPELINE_H_
#define SCOTTY_RUNTIME_PIPELINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/window_operator.h"
#include "datagen/generators.h"
#include "runtime/checkpoint_health.h"
#include "runtime/overload.h"
#include "runtime/parallel_executor.h"

namespace scotty {

/// Single-threaded tuple-at-a-time driver: pulls tuples from a source into
/// a window operator, injecting periodic low-watermarks (paper Section 2).
/// This is our stand-in for the Flink task the paper deploys operators in.
struct PipelineOptions {
  /// Inject a watermark after every N tuples (0 disables watermarks —
  /// correct for streams declared in-order, which self-trigger).
  uint64_t watermark_every = 1024;
  /// Watermark = max event-time seen minus this delay (covers the maximum
  /// out-of-order delay of the stream).
  Time watermark_delay = 2000;
  /// Drain op.TakeResults() after every watermark (keeps memory flat).
  bool drain_results = true;
  /// Feed the operator through ProcessTupleBatch in blocks of this many
  /// tuples (0 or 1 keeps the tuple-at-a-time loop). Blocks never straddle
  /// a watermark boundary, so the item sequence the operator observes is
  /// identical to unbatched execution.
  uint64_t batch_size = 0;
};

struct PipelineReport {
  uint64_t tuples = 0;
  uint64_t results = 0;
  uint64_t updates = 0;
  double seconds = 0.0;

  double TuplesPerSecond() const {
    return seconds > 0 ? static_cast<double>(tuples) / seconds : 0.0;
  }
};

/// Runs up to `max_tuples` tuples through `op` and returns throughput and
/// result counts. Sends one final watermark at the maximum event time.
PipelineReport RunPipeline(TupleSource& src, WindowOperator& op,
                           uint64_t max_tuples, const PipelineOptions& opts);

class CheckpointCoordinator;

/// RunPipeline outcome when worker threads are involved: `ok`/`error`
/// report feed-side failures (a throwing source, a failed state restore)
/// AFTER the workers were drained and joined — the parallel driver never
/// returns with threads still running, whatever the error path.
struct ParallelPipelineReport {
  PipelineReport report;
  uint64_t checkpoints = 0;  ///< barriers accepted by the coordinator
  /// Coordinator persistence health at return (meaningful when a coordinator
  /// was passed; default-healthy otherwise). Carries the persistence-mode
  /// ladder position (mode/fallbacks/promotions/alarm) when the coordinator
  /// runs with auto_fallback.
  CheckpointHealthReport checkpoint_health;
  /// Admission-control counters when the feed ran behind a
  /// BackpressureController (the overload harness does); all-zero for the
  /// plain drivers, which never shed.
  OverloadStats overload;
  bool ok = true;
  std::string error;
};

/// Parallel twin of RunPipeline: feeds the source through a key-partitioned
/// ParallelExecutor (not yet started; this function starts it) with the
/// same tuple/watermark cadence, then drains and joins the workers. If
/// `restore_snapshot` is non-null, every worker operator is first restored
/// from the blob (produced by ParallelExecutor::SnapshotAtBarrier); a
/// restore failure is surfaced in the returned status with no threads
/// started. If `coord` is non-null, a snapshot barrier is taken after every
/// injected watermark and handed to the coordinator (full combined blob via
/// OnBarrierBytes). If the source throws mid-stream, the workers are still
/// stopped and joined before the error is returned — an abandoned executor
/// with live threads would otherwise block forever in its destructor.
/// Shutdown ordering is fixed on every path, including errors: workers are
/// joined first, then the coordinator is flushed, so no async persist is
/// left in flight and every scheduled checkpoint file is either durable or
/// accounted as dropped/failed when this returns.
ParallelPipelineReport RunPipelineParallel(
    TupleSource& src, ParallelExecutor& exec, uint64_t max_tuples,
    const PipelineOptions& opts,
    const std::vector<uint8_t>* restore_snapshot = nullptr,
    CheckpointCoordinator* coord = nullptr);

}  // namespace scotty

#endif  // SCOTTY_RUNTIME_PIPELINE_H_
