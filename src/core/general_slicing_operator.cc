#include "core/general_slicing_operator.h"

#include <algorithm>
#include <cassert>
#include <iterator>

#include "aggregates/kernels.h"

namespace scotty {

GeneralSlicingOperator::GeneralSlicingOperator()
    : GeneralSlicingOperator(Options{}) {}

GeneralSlicingOperator::GeneralSlicingOperator(Options opts)
    : opts_(opts) {
  queries_.stream_in_order = opts_.stream_in_order;
  queries_.force_store_tuples = opts_.force_store_tuples;
  queries_.slice_at_window_ends = opts_.slice_at_window_ends;
}

int GeneralSlicingOperator::AddAggregation(AggregateFunctionPtr fn) {
  assert(!initialized_ &&
         "aggregations must be registered before the first tuple");
  assert(fn != nullptr);
  queries_.aggs.push_back(std::move(fn));
  queries_.Recharacterize();
  return static_cast<int>(queries_.aggs.size()) - 1;
}

int GeneralSlicingOperator::AddWindow(WindowPtr w) {
  assert(w != nullptr);
  assert(w->measure() != Measure::kProcessingTime &&
         "processing-time windows: assign ts = arrival order at ingestion "
         "and use an event-time window (see DESIGN.md)");
  if (w->measure() == Measure::kCount) {
    assert(w->context_class() == ContextClass::kContextFree &&
           "only context-free windows are supported on the count measure");
  }
  queries_.windows.push_back(std::move(w));
  queries_.Recharacterize();
  if (initialized_) RefreshLanes();
  return static_cast<int>(queries_.windows.size()) - 1;
}

void GeneralSlicingOperator::RemoveWindow(int window_id) {
  assert(window_id >= 0 &&
         window_id < static_cast<int>(queries_.windows.size()));
  const bool stored_before = queries_.StoreTuples();
  queries_.windows[static_cast<size_t>(window_id)] = nullptr;
  queries_.Recharacterize();
  if (initialized_) {
    RefreshLanes();
    // Adaptivity: when no remaining query needs retained tuples, drop them
    // to reclaim memory (paper Section 5: "stores the tuples themselves
    // only when it is required").
    if (stored_before && !queries_.StoreTuples() && time_store_) {
      for (size_t i = 0; i < time_store_->NumSlices(); ++i) {
        time_store_->At(i).DropTuples();
      }
    }
  }
}

void GeneralSlicingOperator::EnsureInitialized() {
  if (initialized_) return;
  assert(!queries_.aggs.empty() && "register aggregations before streaming");
  initialized_ = true;
  RefreshLanes();
}

void GeneralSlicingOperator::RefreshLanes(bool recache_edges) {
  if (queries_.HasTimeLane() && !time_store_) {
    time_store_ = std::make_unique<AggregateStore>(opts_.store_mode,
                                                   queries_.aggs);
    slice_mgr_ = std::make_unique<SliceManager>(time_store_.get(), &queries_,
                                                &stats_);
    slicer_ = std::make_unique<StreamSlicer>(time_store_.get(), &queries_);
    window_mgr_ = std::make_unique<WindowManager>(
        time_store_.get(), &queries_, slice_mgr_.get(), &stats_);
  }
  if (queries_.HasCountLane() && !count_lane_) {
    count_lane_ =
        std::make_unique<CountLane>(opts_.store_mode, &queries_, &stats_);
  }
  // In-order FCF workloads without tuple storage: keep a last-timestamp side
  // partial per slice so an FCF edge (punctuation, frame break) that lands
  // exactly on the open slice's newest timestamp splits exactly instead of
  // mis-assigning the same-timestamp tuples (see Slice::CanSplitAtTrackedLast).
  if (time_store_ && opts_.stream_in_order && !queries_.StoreTuples() &&
      queries_.chars.any_fcf_window) {
    time_store_->EnableLastTsTracking();
  }
  // Rebind context-aware windows and refresh caches after query changes.
  ca_windows_.clear();
  cf_trigger_heap_ = {};
  win_prev_wm_.assign(queries_.windows.size(), kNoTime);
  for (size_t i = 0; i < queries_.windows.size(); ++i) {
    const WindowPtr& w = queries_.windows[i];
    if (!QuerySet::OnTimeLane(w)) continue;
    if (auto* caw = dynamic_cast<ContextAwareWindow*>(w.get())) {
      caw->Bind(time_store_.get());
      ca_windows_.push_back({static_cast<int>(i), caw});
    } else {
      // kNoTime sorts first: the window is visited on the next trigger,
      // which computes its real next edge.
      cf_trigger_heap_.push({kNoTime, static_cast<int>(i)});
    }
  }
  has_ca_windows_ = !ca_windows_.empty();
  if (recache_edges && slicer_ && max_ts_ != kNoTime) slicer_->Recache(max_ts_);
  if (count_lane_) count_lane_->InvalidateTriggerCache();
  next_trigger_edge_ = kNoTime;  // recompute on next trigger check
}

void GeneralSlicingOperator::ProcessTuple(const Tuple& t) {
  EnsureInitialized();
  const bool in_order = max_ts_ == kNoTime || t.ts >= max_ts_;
  ++stats_.tuples_processed;
  if (!in_order) ++stats_.out_of_order_tuples;

  const bool late = last_wm_ != kNoTime && t.ts <= last_wm_;
  if (late) {
    if (t.ts < last_wm_ - opts_.allowed_lateness) {
      ++stats_.dropped_tuples;
      return;
    }
    ++stats_.late_tuples;
  }
  if (last_wm_ == kNoTime) {
    // Baseline for the first trigger: windows ending before the first tuple
    // are empty and not reported.
    last_wm_ = t.ts - 1;
    wm_floor_ = last_wm_;
    if (window_mgr_) window_mgr_->SetWatermarkFloor(wm_floor_);
  }

  if (time_store_) {
    if (in_order) slicer_->OnInOrderTuple(t.ts);

    // Step 2 (Slice Manager): context-aware windows observe every tuple and
    // request splits / merges / extent updates.
    std::vector<char> ctx_changed;
    std::vector<std::pair<int, std::vector<std::pair<Time, Time>>>> changed;
    for (auto& [wid, caw] : ca_windows_) {
      ContextModifications mods = caw->ProcessContext(t);
      if (mods.Empty()) continue;
      slice_mgr_->Apply(mods);
      if (!mods.changed_windows.empty()) {
        if (ctx_changed.empty()) ctx_changed.assign(queries_.windows.size(), 0);
        ctx_changed[static_cast<size_t>(wid)] = 1;
        changed.emplace_back(wid, std::move(mods.changed_windows));
      }
    }

    if (!t.is_punctuation) {
      if (in_order) {
        slice_mgr_->AddInOrder(t);
      } else {
        slice_mgr_->AddOutOfOrder(t);
      }
    }

    if (in_order) {
      if (has_ca_windows_) slicer_->Recache(t.ts);
    }

    // Allowed-lateness updates (Window Manager, paper Step 3): emitted
    // windows whose aggregate the late tuple changed.
    for (auto& [wid, wins] : changed) {
      window_mgr_->EmitChangedWindows(wid, wins, last_wm_, &results_);
    }
    if (late) {
      window_mgr_->EmitLateUpdates(t.ts, last_wm_,
                                   ctx_changed.empty() ? nullptr : &ctx_changed,
                                   &results_);
    }
  }

  if (count_lane_ && !t.is_punctuation) {
    count_lane_->Add(t, in_order, &results_);
  }

  if (in_order) max_ts_ = t.ts;

  if (opts_.stream_in_order) {
    // Every in-order tuple acts as a watermark (paper Section 5.3 Step 3).
    // The common case is one comparison against the cached next edge.
    if (next_trigger_edge_ == kNoTime || has_ca_windows_) {
      next_trigger_edge_ = NextTriggerEdge();
    }
    const bool count_due =
        count_lane_ && count_lane_->NeedsTrigger(count_lane_->total_count());
    if (t.ts >= next_trigger_edge_ || count_due) {
      TriggerAll(t.ts);
      next_trigger_edge_ = NextTriggerEdge();
    }
  }
}

void GeneralSlicingOperator::ProcessTupleBatch(std::span<const Tuple> batch) {
  EnsureInitialized();
  // The run fold below only models the pure time-lane, context-free flow;
  // count measures and context-aware windows (sessions) observe every tuple
  // individually, so those workloads take the per-tuple path unchanged.
  const bool batchable =
      time_store_ != nullptr && !has_ca_windows_ && count_lane_ == nullptr;
  if (!batchable) {
    for (const Tuple& t : batch) ProcessTuple(t);
    return;
  }

  const bool store_tuples = queries_.StoreTuples();
  const size_t n = batch.size();
  size_t i = 0;
  while (i < n) {
    // A tuple folds straight into the open slice iff it is in-order, not
    // late, not punctuation, and stays strictly below the next slice edge
    // (so the slicer's cached edge check stays a no-op). On declared
    // in-order streams it must additionally stay below the next trigger
    // edge, so per-tuple trigger timing is preserved exactly.
    Time bound = slicer_->next_edge();
    if (opts_.stream_in_order) {
      if (next_trigger_edge_ == kNoTime) next_trigger_edge_ = NextTriggerEdge();
      bound = std::min(bound, next_trigger_edge_);
    }
    const Tuple& first = batch[i];
    const bool foldable = max_ts_ != kNoTime && last_wm_ != kNoTime &&
                          !first.is_punctuation && first.ts >= max_ts_ &&
                          first.ts > last_wm_ && first.ts < bound;
    if (!foldable) {
      // Straggler (first tuple, late, out-of-order, punctuation, or an
      // edge/trigger crossing): full machinery, then re-derive the bounds.
      ProcessTuple(first);
      ++i;
      continue;
    }
    // Extend the run while timestamps stay monotone and below the bound.
    size_t j = i + 1;
    Time run_last_ts = first.ts;
    while (j < n) {
      const Tuple& t = batch[j];
      if (t.is_punctuation || t.ts < run_last_ts || t.ts >= bound) break;
      run_last_ts = t.ts;
      ++j;
    }
    // Fold the whole run with one virtual dispatch per aggregation and one
    // eager-tree leaf refresh, instead of per-tuple Lift+Combine calls.
    Slice* cur = time_store_->Current();
    assert(cur != nullptr && "open slice must exist after the first tuple");
    cur->AddTupleBatch(batch.subspan(i, j - i), time_store_->fns(),
                       store_tuples);
    time_store_->NoteTuplesAdded(j - i);
    time_store_->OnSliceAggUpdated(time_store_->NumSlices() - 1);
    stats_.tuples_processed += j - i;
    max_ts_ = run_last_ts;
    i = j;
  }
}

void GeneralSlicingOperator::ProcessTupleColumns(const TupleColumnsView& cols) {
  EnsureInitialized();
  const bool batchable =
      time_store_ != nullptr && !has_ca_windows_ && count_lane_ == nullptr;
  if (!batchable) {
    for (size_t i = 0; i < cols.size; ++i) ProcessTuple(cols.Get(i));
    return;
  }

  const bool store_tuples = queries_.StoreTuples();
  // punct == nullptr is the producer's promise that the view is all data
  // tuples; the run scan then needs no per-element punctuation test.
  const bool no_punct = cols.punct == nullptr;
  const size_t n = cols.size;
  size_t i = 0;
  while (i < n) {
    // Same foldability gate as the AoS path (see ProcessTupleBatch).
    Time bound = slicer_->next_edge();
    if (opts_.stream_in_order) {
      if (next_trigger_edge_ == kNoTime) next_trigger_edge_ = NextTriggerEdge();
      bound = std::min(bound, next_trigger_edge_);
    }
    const Time first_ts = cols.ts[i];
    const bool foldable = max_ts_ != kNoTime && last_wm_ != kNoTime &&
                          !cols.IsPunct(i) && first_ts >= max_ts_ &&
                          first_ts > last_wm_ && first_ts < bound;
    if (!foldable) {
      ProcessTuple(cols.Get(i));
      ++i;
      continue;
    }
    // Extend the run: vectorized monotone scan over the dense ts column
    // when the view is punctuation-free, scalar scan with the punctuation
    // test otherwise.
    size_t run = 1;
    if (no_punct) {
      run += simd::MonotoneRunLength(cols.ts + i + 1, n - i - 1, first_ts,
                                     bound);
    } else {
      Time run_last = first_ts;
      size_t j = i + 1;
      while (j < n && cols.punct[j] == 0 && cols.ts[j] >= run_last &&
             cols.ts[j] < bound) {
        run_last = cols.ts[j];
        ++j;
      }
      run = j - i;
    }
    Slice* cur = time_store_->Current();
    assert(cur != nullptr && "open slice must exist after the first tuple");
    cur->AddTupleColumns(cols.Subview(i, run), time_store_->fns(),
                         store_tuples);
    time_store_->NoteTuplesAdded(run);
    time_store_->OnSliceAggUpdated(time_store_->NumSlices() - 1);
    stats_.tuples_processed += run;
    max_ts_ = cols.ts[i + run - 1];
    i += run;
  }
}

void GeneralSlicingOperator::MergePreAggregatedSlice(
    Time start, Time end, Time t_first, Time t_last, uint64_t count,
    std::span<const Partial> partials) {
  EnsureInitialized();
  assert(time_store_ != nullptr && !has_ca_windows_ &&
         count_lane_ == nullptr &&
         "pre-aggregated merge only supports the context-free time lane");
  assert(partials.size() == time_store_->fns().size());
  if (count == 0) return;
  // Find the slice starting at `start`; create it if the shared store has
  // not seen this range yet. Merges from different workers may arrive in
  // any bucket order, so creation must handle a mid-sequence gap.
  size_t idx = time_store_->FindByStart(start);
  Slice* s;
  if (idx != AggregateStore::kNpos && time_store_->At(idx).start() == start) {
    s = &time_store_->At(idx);
    assert(s->end() == end && "merge bounds must align with slice edges");
  } else {
    const size_t pos = idx == AggregateStore::kNpos ? 0 : idx + 1;
    s = &time_store_->InsertAt(pos, start, end);
    idx = pos;
  }
  const auto& fns = time_store_->fns();
  for (size_t i = 0; i < partials.size(); ++i) {
    fns[i]->Combine(s->mutable_agg(i), partials[i]);
  }
  s->NoteTupleRange(t_first, t_last, count);
  time_store_->NoteTuplesAdded(count);
  time_store_->OnSliceAggUpdated(idx);
  stats_.tuples_processed += count;
  if (max_ts_ == kNoTime || t_last > max_ts_) max_ts_ = t_last;
}

Time GeneralSlicingOperator::NextTriggerEdge() const {
  // Lower bound for the next window end: no trigger can fire before the
  // next edge of any time-lane window. Context-free edges come from the
  // trigger heap in O(1); context-aware edges move with the stream and are
  // recomputed.
  Time edge = cf_trigger_heap_.empty() ? kMaxTime : cf_trigger_heap_.top().first;
  for (const auto& [wid, caw] : ca_windows_) {
    edge = std::min(edge, caw->GetNextEdge(last_wm_));
  }
  return edge;
}

void GeneralSlicingOperator::ProcessWatermark(Time wm) {
  EnsureInitialized();
  if (last_wm_ == kNoTime) {
    // No windows before the first observed point in time.
    last_wm_ = max_ts_ == kNoTime ? wm : std::min(wm, max_ts_ - 1);
    wm_floor_ = last_wm_;
    if (window_mgr_) window_mgr_->SetWatermarkFloor(wm_floor_);
  }
  TriggerAll(wm);
}

void GeneralSlicingOperator::TriggerAll(Time wm) {
  if (last_wm_ != kNoTime && wm <= last_wm_) return;
  const Time prev_global = last_wm_;
  if (window_mgr_) {
    // Context-free windows: only those whose cached next edge the watermark
    // passed are visited (heap pop), keeping trigger cost independent of
    // the number of idle concurrent queries.
    while (!cf_trigger_heap_.empty() && cf_trigger_heap_.top().first <= wm) {
      const auto [edge, wid] = cf_trigger_heap_.top();
      cf_trigger_heap_.pop();
      const WindowPtr& win = queries_.windows[static_cast<size_t>(wid)];
      if (!QuerySet::OnTimeLane(win)) continue;  // removed query
      Time prev = win_prev_wm_[static_cast<size_t>(wid)];
      if (prev == kNoTime) prev = prev_global;
      window_mgr_->TriggerWindow(wid, prev, wm, &results_);
      win_prev_wm_[static_cast<size_t>(wid)] = wm;
      cf_trigger_heap_.push({win->GetNextEdge(wm), wid});
    }
    // Context-aware windows: edges move with the stream; visit every time.
    for (const auto& [wid, caw] : ca_windows_) {
      Time prev = win_prev_wm_[static_cast<size_t>(wid)];
      if (prev == kNoTime) prev = prev_global;
      window_mgr_->TriggerWindow(wid, prev, wm, &results_);
      win_prev_wm_[static_cast<size_t>(wid)] = wm;
    }
  }
  if (count_lane_) {
    const int64_t cwm = opts_.stream_in_order
                            ? count_lane_->total_count()
                            : count_lane_->CountAtOrBefore(wm);
    count_lane_->Trigger(last_cwm_, cwm, &results_);
    last_cwm_ = std::max(last_cwm_, cwm);
  }
  last_wm_ = wm;
  Evict(wm);
}

void GeneralSlicingOperator::Evict(Time wm) {
  if (time_store_) {
    Time safe = wm;
    bool keep_all = false;
    for (const WindowPtr& w : queries_.windows) {
      if (!QuerySet::OnTimeLane(w)) continue;
      const Time p = w->EvictionSafePoint(wm);
      if (p == kNoTime) {
        keep_all = true;
        break;
      }
      safe = std::min(safe, p);
    }
    if (!keep_all) {
      const Time bound = safe - opts_.allowed_lateness;
      time_store_->EvictBefore(bound);
      for (const WindowPtr& w : queries_.windows) {
        if (QuerySet::OnTimeLane(w)) w->EvictState(bound);
      }
    }
  }
  if (count_lane_) {
    Time safe_rank = last_cwm_;
    for (const WindowPtr& w : queries_.windows) {
      if (!QuerySet::OnCountLane(w)) continue;
      safe_rank = std::min(safe_rank, w->EvictionSafePoint(last_cwm_));
    }
    count_lane_->Evict(safe_rank, wm - opts_.allowed_lateness);
  }
}

Partial GeneralSlicingOperator::QueryTimeRangePartial(size_t agg, Time start,
                                                      Time end) {
  if (!time_store_) return Partial{};
  return window_mgr_->RangePartial(agg, start, end);
}

std::vector<WindowResult> GeneralSlicingOperator::TakeResults() {
  std::vector<WindowResult> out;
  out.swap(results_);
  return out;
}

void GeneralSlicingOperator::TakeResultsInto(std::vector<WindowResult>* out) {
  // Keep results_'s capacity so steady-state drains never reallocate.
  out->insert(out->end(), std::make_move_iterator(results_.begin()),
              std::make_move_iterator(results_.end()));
  results_.clear();
}

size_t GeneralSlicingOperator::MemoryUsageBytes() const {
  size_t bytes = 0;
  if (time_store_) bytes += time_store_->MemoryBytes();
  if (count_lane_) bytes += count_lane_->MemoryBytes();
  return bytes;
}

std::string GeneralSlicingOperator::Name() const {
  return opts_.store_mode == StoreMode::kLazy ? "general-slicing-lazy"
                                              : "general-slicing-eager";
}

namespace {
constexpr uint32_t kOperatorTag = 0x47534F50;  // "GSOP"
}  // namespace

void GeneralSlicingOperator::SerializeState(state::Writer& w) const {
  SerializeImpl(w, /*delta=*/false);
}

void GeneralSlicingOperator::SerializeDelta(state::Writer& w) const {
  w.U8(kIncrementalDelta);
  SerializeImpl(w, /*delta=*/true);
}

void GeneralSlicingOperator::ApplyDelta(state::Reader& r) {
  const uint8_t kind = r.U8();
  if (kind == kFullDelta) {
    DeserializeState(r);
    return;
  }
  if (kind != kIncrementalDelta) {
    r.Fail();
    return;
  }
  DeserializeImpl(r, /*delta=*/true);
}

void GeneralSlicingOperator::MarkSnapshotClean() {
  if (time_store_) time_store_->MarkAllClean();
}

void GeneralSlicingOperator::SerializeImpl(state::Writer& w,
                                           bool delta) const {
  w.Tag(kOperatorTag);
  w.Bool(initialized_);
  if (!initialized_) return;

  // Query-set fingerprint: restore requires the same windows and
  // aggregations in the same order. Removed windows serialize as absent.
  w.U32(static_cast<uint32_t>(queries_.windows.size()));
  for (const WindowPtr& win : queries_.windows) {
    w.Bool(win != nullptr);
    if (win) w.Str(win->Name());
  }
  w.U32(static_cast<uint32_t>(queries_.aggs.size()));
  for (const AggregateFunctionPtr& fn : queries_.aggs) w.Str(fn->Name());

  w.U64(stats_.tuples_processed);
  w.U64(stats_.out_of_order_tuples);
  w.U64(stats_.late_tuples);
  w.U64(stats_.dropped_tuples);
  w.U64(stats_.slice_merges);
  w.U64(stats_.slice_splits);
  w.U64(stats_.slice_recomputes);
  w.U64(stats_.count_shifts);
  w.U64(stats_.windows_emitted);
  w.U64(stats_.window_updates_emitted);

  w.I64(max_ts_);
  w.I64(last_wm_);
  w.I64(wm_floor_);
  w.I64(last_cwm_);

  // Window-internal context (sessions, punctuation edges, frames).
  for (const WindowPtr& win : queries_.windows) {
    if (win) win->SerializeState(w);
  }
  w.U64(win_prev_wm_.size());
  for (Time t : win_prev_wm_) w.I64(t);

  w.Bool(time_store_ != nullptr);
  if (time_store_) {
    if (delta) {
      time_store_->SerializeDelta(w);
    } else {
      time_store_->Serialize(w);
    }
    slicer_->Serialize(w);
  }
  w.Bool(count_lane_ != nullptr);
  if (count_lane_) count_lane_->Serialize(w);

  w.U64(results_.size());
  for (const WindowResult& res : results_) SerializeWindowResult(w, res);
}

void GeneralSlicingOperator::DeserializeState(state::Reader& r) {
  DeserializeImpl(r, /*delta=*/false);
}

void GeneralSlicingOperator::DeserializeImpl(state::Reader& r, bool delta) {
  r.Tag(kOperatorTag);
  const bool was_initialized = r.Bool();
  if (!r.ok() || !was_initialized) return;

  const uint32_t nwin = r.U32();
  if (nwin != queries_.windows.size()) {
    r.Fail();
    return;
  }
  for (const WindowPtr& win : queries_.windows) {
    const bool present = r.Bool();
    if (present != (win != nullptr) ||
        (present && r.Str() != win->Name())) {
      r.Fail();
      return;
    }
  }
  const uint32_t nagg = r.U32();
  if (nagg != queries_.aggs.size()) {
    r.Fail();
    return;
  }
  for (const AggregateFunctionPtr& fn : queries_.aggs) {
    if (r.Str() != fn->Name()) {
      r.Fail();
      return;
    }
  }
  if (!r.ok()) return;

  stats_.tuples_processed = r.U64();
  stats_.out_of_order_tuples = r.U64();
  stats_.late_tuples = r.U64();
  stats_.dropped_tuples = r.U64();
  stats_.slice_merges = r.U64();
  stats_.slice_splits = r.U64();
  stats_.slice_recomputes = r.U64();
  stats_.count_shifts = r.U64();
  stats_.windows_emitted = r.U64();
  stats_.window_updates_emitted = r.U64();

  max_ts_ = r.I64();
  last_wm_ = r.I64();
  wm_floor_ = r.I64();
  last_cwm_ = r.I64();

  for (const WindowPtr& win : queries_.windows) {
    if (win) win->DeserializeState(r);
  }
  if (!r.ok()) return;

  // Recreate lanes and bindings, but do NOT recache slice edges: the
  // slicer's cached edge and the open slice's provisional end are restored
  // verbatim from the payload below. Recaching here would mutate the store
  // before its bytes are read — in delta mode that dirties the previous
  // epoch's open slice and invalidates the delta's clean references to it.
  initialized_ = true;
  RefreshLanes(/*recache_edges=*/false);
  if (window_mgr_) window_mgr_->SetWatermarkFloor(wm_floor_);

  const uint64_t nprev = r.U64();
  if (nprev != win_prev_wm_.size()) {
    r.Fail();
    return;
  }
  for (Time& t : win_prev_wm_) t = r.I64();

  // Reconstruct the CF trigger heap from the per-window trigger progress.
  // RefreshLanes seeded every entry with {kNoTime, wid}, which would visit
  // all CF windows on the next watermark in window-id order; the original
  // operator pops them in edge order, and emission order is part of the
  // bit-identical restore contract. The heap is a pure function of
  // win_prev_wm_: a window triggered at wm was re-pushed with edge
  // GetNextEdge(wm).
  cf_trigger_heap_ = {};
  for (size_t i = 0; i < queries_.windows.size(); ++i) {
    const WindowPtr& win = queries_.windows[i];
    if (!win || !QuerySet::OnTimeLane(win)) continue;
    if (dynamic_cast<ContextAwareWindow*>(win.get()) != nullptr) continue;
    const Time prev = win_prev_wm_[i];
    cf_trigger_heap_.push(
        {prev == kNoTime ? kNoTime : win->GetNextEdge(prev),
         static_cast<int>(i)});
  }

  const bool had_time_store = r.Bool();
  if (had_time_store != (time_store_ != nullptr)) {
    r.Fail();
    return;
  }
  if (time_store_) {
    if (delta) {
      time_store_->ApplyDelta(r);
    } else {
      time_store_->Deserialize(r);
    }
    slicer_->Deserialize(r);
  }
  const bool had_count_lane = r.Bool();
  if (had_count_lane != (count_lane_ != nullptr)) {
    r.Fail();
    return;
  }
  if (count_lane_) count_lane_->Deserialize(r);

  const uint64_t nres = r.U64();
  if (nres > r.remaining()) {
    r.Fail();
    return;
  }
  results_.clear();
  results_.reserve(static_cast<size_t>(nres));
  for (uint64_t i = 0; i < nres && r.ok(); ++i) {
    results_.push_back(DeserializeWindowResult(r));
  }
  next_trigger_edge_ = kNoTime;  // lazily recomputed on the next tuple
}

}  // namespace scotty
