#ifndef SCOTTY_BASELINES_AGGREGATE_TREE_H_
#define SCOTTY_BASELINES_AGGREGATE_TREE_H_

#include <deque>
#include <string>
#include <vector>

#include "aggregates/aggregate_function.h"
#include "core/flat_fat.h"
#include "core/window_operator.h"
#include "windows/window.h"

namespace scotty {

/// Aggregate Tree baseline (paper Section 3.2, Table 1 Row 2): a FlatFAT
/// [42] whose leaves are the individual stream tuples. Window aggregates are
/// answered as ordered range queries over the tree, sharing partials among
/// overlapping windows; in-order appends cost O(log n) tree updates, while
/// out-of-order tuples require a leaf insert in the middle of the tree —
/// shifting leaves and recomputing inner nodes (the drastic throughput drop
/// the paper measures in Figures 9 and 12a).
class AggregateTreeOperator : public WindowOperator {
 public:
  explicit AggregateTreeOperator(bool stream_in_order = false,
                                 Time allowed_lateness = 0);

  int AddAggregation(AggregateFunctionPtr fn);
  int AddWindow(WindowPtr w);

  void ProcessTuple(const Tuple& t) override;
  void ProcessWatermark(Time wm) override;
  std::vector<WindowResult> TakeResults() override;
  size_t MemoryUsageBytes() const override;
  std::string Name() const override { return "aggregate-tree"; }

  size_t LeafCount() const { return buffer_.size(); }

 private:
  void TriggerAll(Time wm);
  void Evict(Time wm);
  Value ComputeWindow(size_t agg, Time start, Time end) const;
  void EmitTimeWindow(int w, Time s, Time e, bool update);
  void EmitCountWindow(int w, int64_t cs, int64_t ce, bool update);

  bool stream_in_order_;
  Time allowed_lateness_;
  std::vector<AggregateFunctionPtr> aggs_;
  std::vector<WindowPtr> windows_;
  std::deque<Tuple> buffer_;    // sorted by (ts, seq); index i = tree leaf i
  std::vector<FlatFat> trees_;  // one per aggregation
  int64_t evicted_count_ = 0;
  Time max_ts_ = kNoTime;
  Time last_wm_ = kNoTime;
  int64_t last_cwm_ = 0;
  std::vector<WindowResult> results_;
};

}  // namespace scotty

#endif  // SCOTTY_BASELINES_AGGREGATE_TREE_H_
