// Figure 13: Impact of aggregation types on throughput (general slicing).
//
// Setup (paper Section 6.3.2): 20 concurrent windows, 20% out-of-order
// tuples with delays 0-2 s; the aggregation function varies over the
// Tangwongsan et al. set, the two holistic functions, and the deliberately
// not-invertible "sum w/o invert". Time-based and count-based window
// measures are compared.
//
// Expected shape: on time-based windows all algebraic/distributive
// functions sustain similar throughput and holistic ones drop sharply;
// on count-based windows invertible functions stay close to the time-based
// numbers, "min/max-family" not-invertible functions lose little (removed
// tuples rarely touch the extremum), while sum-w/o-invert pays a full slice
// recomputation per shift.

#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"

namespace scotty {
namespace bench {
namespace {

void Run() {
  PrintHeader("fig13", "throughput per aggregation, time vs count measure");
  const std::vector<std::string> aggs = {
      "sum",       "sum-no-invert", "count",   "avg",
      "geometric-mean", "stddev",   "min",     "max",
      "min-count", "max-count",     "arg-min", "arg-max",
      "m4",        "median",        "p90"};
  for (const bool count_based : {false, true}) {
    for (const std::string& agg : aggs) {
      SensorStream inner(SensorStream::Football());
      OutOfOrderInjector::Options ooo;
      ooo.fraction = 0.2;
      ooo.max_delay = 2000;
      OutOfOrderInjector src(&inner, ooo);
      const std::vector<WindowPtr> windows =
          count_based ? DashboardCountWindows(20)
                      : DashboardTumblingWindows(20);
      auto op = MakeTechnique(Technique::kLazySlicing, false, 2000, windows,
                              {agg});
      const ThroughputResult r =
          MeasureThroughput(*op, src, 2'000'000, 0.8, 1024, 2000);
      EmitRow("fig13", agg + (count_based ? "/count" : "/time"), agg,
              r.TuplesPerSecond(), "tuples/s");
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace scotty

int main() {
  scotty::bench::Run();
  return 0;
}
