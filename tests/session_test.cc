// Operator-level session-window tests: slice creation per session, merges
// without recomputation, out-of-order extensions, and coexistence with
// context-free queries.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "aggregates/registry.h"
#include "core/general_slicing_operator.h"
#include "tests/test_util.h"
#include "windows/session.h"
#include "windows/tumbling.h"

namespace scotty {
namespace {

using testutil::FinalResults;
using testutil::Num;
using testutil::RunStream;
using testutil::T;

GeneralSlicingOperator::Options Opts(bool in_order, Time lateness = 1000) {
  GeneralSlicingOperator::Options o;
  o.stream_in_order = in_order;
  o.allowed_lateness = lateness;
  return o;
}

TEST(SessionSlicing, InOrderSessionsAggregatePerSession) {
  GeneralSlicingOperator op(Opts(true));
  op.AddAggregation(MakeAggregation("sum"));
  op.AddWindow(std::make_shared<SessionWindow>(5));
  // Sessions: {1,3,4} -> [1,9) and {20,22} -> [20,27).
  auto fin = FinalResults(RunStream(
      op, {T(1, 1), T(3, 2), T(4, 3), T(20, 4), T(22, 5)}, 40));
  ASSERT_EQ(fin.size(), 2u);
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 1, 9}]), 6.0);
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 20, 27}]), 9.0);
}

TEST(SessionSlicing, SessionEmittedOnlyAfterTimeout) {
  GeneralSlicingOperator op(Opts(true));
  op.AddAggregation(MakeAggregation("sum"));
  op.AddWindow(std::make_shared<SessionWindow>(5));
  op.ProcessTuple(T(1, 1, 0));
  op.ProcessTuple(T(3, 2, 1));
  EXPECT_TRUE(op.TakeResults().empty());  // session still open
  op.ProcessTuple(T(30, 4, 2));           // closes [1, 8)
  auto results = op.TakeResults();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].start, 1);
  EXPECT_EQ(results[0].end, 8);
  EXPECT_DOUBLE_EQ(Num(results[0].value), 3.0);
}

TEST(SessionSlicing, OutOfOrderTupleMergesSessionsWithoutRecompute) {
  GeneralSlicingOperator op(Opts(false));
  op.AddAggregation(MakeAggregation("sum"));
  op.AddWindow(std::make_shared<SessionWindow>(5));
  std::vector<Tuple> tuples = {T(10, 1), T(18, 2), T(30, 3), T(14, 4)};
  auto fin = FinalResults(RunStream(op, tuples, 50));
  // 14 bridges {10} and {18}: one session [10, 23) with sum 7.
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 10, 23}]), 7.0);
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 30, 35}]), 3.0);
  EXPECT_GT(op.stats().slice_merges, 0u);
  EXPECT_EQ(op.stats().slice_recomputes, 0u);  // sessions never recompute
  EXPECT_EQ(op.stats().slice_splits, 0u);
}

TEST(SessionSlicing, SessionsRequireNoTupleStorage) {
  GeneralSlicingOperator op(Opts(false));
  op.AddAggregation(MakeAggregation("sum"));
  op.AddWindow(std::make_shared<SessionWindow>(5));
  EXPECT_FALSE(op.queries().StoreTuples());  // the paper's session exception
}

TEST(SessionSlicing, OutOfOrderNewSessionBetweenExisting) {
  GeneralSlicingOperator op(Opts(false));
  op.AddAggregation(MakeAggregation("sum"));
  op.AddWindow(std::make_shared<SessionWindow>(5));
  auto fin = FinalResults(RunStream(
      op, {T(10, 1), T(40, 2), T(25, 3)}, 60));
  ASSERT_EQ(fin.size(), 3u);
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 10, 15}]), 1.0);
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 25, 30}]), 3.0);
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 40, 45}]), 2.0);
}

TEST(SessionSlicing, OutOfOrderBackwardExtensionMovesSessionStart) {
  GeneralSlicingOperator op(Opts(false));
  op.AddAggregation(MakeAggregation("sum"));
  op.AddWindow(std::make_shared<SessionWindow>(5));
  auto fin = FinalResults(RunStream(
      op, {T(10, 1), T(12, 2), T(40, 9), T(7, 3)}, 60));
  // Session extends backward to 7: [7, 17) with sum 6.
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 7, 17}]), 6.0);
}

TEST(SessionSlicing, OutOfOrderForwardExtensionMovesSessionEnd) {
  GeneralSlicingOperator op(Opts(false));
  op.AddAggregation(MakeAggregation("sum"));
  op.AddWindow(std::make_shared<SessionWindow>(5));
  auto fin = FinalResults(RunStream(
      op, {T(10, 1), T(40, 9), T(13, 2)}, 60));
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 10, 18}]), 3.0);
}

TEST(SessionSlicing, LateTupleAfterEmissionProducesUpdatedSession) {
  GeneralSlicingOperator op(Opts(false, /*lateness=*/100));
  op.AddAggregation(MakeAggregation("sum"));
  op.AddWindow(std::make_shared<SessionWindow>(5));
  op.ProcessTuple(T(10, 1, 0));
  op.ProcessTuple(T(40, 2, 1));
  op.ProcessWatermark(30);  // emits session [10, 15)
  auto first = FinalResults(op.TakeResults());
  EXPECT_DOUBLE_EQ(Num(first[{0, 0, 10, 15}]), 1.0);
  op.ProcessTuple(T(12, 5, 2));  // late, lands inside the emitted session
  auto updates = op.TakeResults();
  ASSERT_EQ(updates.size(), 1u);
  EXPECT_TRUE(updates[0].is_update);
  EXPECT_DOUBLE_EQ(Num(updates[0].value), 6.0);
}

TEST(SessionSlicing, MergeThenSplitThenMergeSequence) {
  // A full out-of-order session life cycle: backward extension, a brand-new
  // session carved out of an existing gap, then a late tuple fusing it with
  // its right neighbour — while the left session stays exactly gap-separated.
  for (const StoreMode mode : {StoreMode::kLazy, StoreMode::kEager}) {
    GeneralSlicingOperator::Options o;
    o.stream_in_order = false;
    o.allowed_lateness = 1000;
    o.store_mode = mode;
    GeneralSlicingOperator op(o);
    op.AddAggregation(MakeAggregation("sum"));
    op.AddWindow(std::make_shared<SessionWindow>(5));
    auto fin = FinalResults(RunStream(
        op,
        {T(10, 1), T(30, 2), T(60, 4),  // sessions {10}, {30}, {60}
         T(26, 8),                      // extends [30,35) back to [26,35)
         T(22, 16),                     // extends again to [22,35)
         T(15, 32),   // new session [15,20): splits the 10..22 gap
         T(18, 64)},  // fuses [15,20) with [22,35) -> [15,35)
        100));
    ASSERT_EQ(fin.size(), 3u) << "store mode " << static_cast<int>(mode);
    // 15 is exactly gap-separated from 10: [10,15) must NOT merge.
    EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 10, 15}]), 1.0);
    EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 15, 35}]), 122.0);
    EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 60, 65}]), 4.0);
    EXPECT_GT(op.stats().slice_merges, 0u);
  }
}

TEST(SessionSlicing, SessionPlusTumblingShareTheStream) {
  GeneralSlicingOperator op(Opts(true));
  op.AddAggregation(MakeAggregation("sum"));
  const int sess = op.AddWindow(std::make_shared<SessionWindow>(5));
  const int tumb = op.AddWindow(std::make_shared<TumblingWindow>(10));
  std::vector<Tuple> tuples = {T(1, 1), T(3, 2), T(12, 3), T(30, 4)};
  auto fin = FinalResults(RunStream(op, tuples, 50));
  EXPECT_DOUBLE_EQ(Num(fin[{sess, 0, 1, 8}]), 3.0);
  EXPECT_DOUBLE_EQ(Num(fin[{sess, 0, 12, 17}]), 3.0);
  EXPECT_DOUBLE_EQ(Num(fin[{tumb, 0, 0, 10}]), 3.0);
  EXPECT_DOUBLE_EQ(Num(fin[{tumb, 0, 10, 20}]), 3.0);
  EXPECT_DOUBLE_EQ(Num(fin[{tumb, 0, 30, 40}]), 4.0);
}

TEST(SessionSlicing, TumblingEdgeInsideSessionDoesNotBreakSession) {
  GeneralSlicingOperator op(Opts(true));
  op.AddAggregation(MakeAggregation("sum"));
  const int sess = op.AddWindow(std::make_shared<SessionWindow>(8));
  op.AddWindow(std::make_shared<TumblingWindow>(10));
  // Session {7, 9, 12} straddles the tumbling edge at 10.
  auto fin = FinalResults(RunStream(
      op, {T(7, 1), T(9, 2), T(12, 4), T(50, 1)}, 80));
  EXPECT_DOUBLE_EQ(Num(fin[{sess, 0, 7, 20}]), 7.0);
}

TEST(SessionSlicing, MergeRespectsOtherWindowsEdges) {
  // A merge may not erase a boundary the tumbling query still needs.
  GeneralSlicingOperator op(Opts(false));
  op.AddAggregation(MakeAggregation("sum"));
  const int sess = op.AddWindow(std::make_shared<SessionWindow>(6));
  const int tumb = op.AddWindow(std::make_shared<TumblingWindow>(10));
  std::vector<Tuple> tuples = {T(6, 1), T(14, 2), T(40, 0), T(9, 4)};
  auto fin = FinalResults(RunStream(op, tuples, 60));
  // Sessions {6} and {14} merge via 9 into [6, 20).
  EXPECT_DOUBLE_EQ(Num(fin[{sess, 0, 6, 20}]), 7.0);
  // Tumbling windows must still see the split at 10.
  EXPECT_DOUBLE_EQ(Num(fin[{tumb, 0, 0, 10}]), 5.0);
  EXPECT_DOUBLE_EQ(Num(fin[{tumb, 0, 10, 20}]), 2.0);
}

TEST(SessionSlicing, EagerStoreHandlesSessionMerges) {
  GeneralSlicingOperator::Options o = Opts(false);
  o.store_mode = StoreMode::kEager;
  GeneralSlicingOperator op(o);
  op.AddAggregation(MakeAggregation("sum"));
  op.AddWindow(std::make_shared<SessionWindow>(5));
  auto fin = FinalResults(RunStream(
      op, {T(10, 1), T(18, 2), T(30, 3), T(14, 4)}, 50));
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 10, 23}]), 7.0);
}

TEST(SessionSlicing, ManySessionsEvictedAfterTimeoutAndLateness) {
  GeneralSlicingOperator op(Opts(true, /*lateness=*/0));
  op.AddAggregation(MakeAggregation("sum"));
  op.AddWindow(std::make_shared<SessionWindow>(5));
  for (int i = 0; i < 1000; ++i) {
    // Tuples 20 apart: every tuple is its own session.
    op.ProcessTuple(T(i * 20, 1.0, static_cast<uint64_t>(i)));
  }
  EXPECT_LE(op.time_store()->NumSlices(), 3u);
}

}  // namespace
}  // namespace scotty
