#ifndef SCOTTY_WINDOWS_WINDOW_H_
#define SCOTTY_WINDOWS_WINDOW_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/time.h"
#include "common/tuple.h"
#include "state/serde.h"

namespace scotty {

/// Window-type classification by the context required to determine window
/// edges (paper Section 4.4, following Li et al. [31]).
enum class ContextClass {
  kContextFree,          // all edges computable a priori (tumbling, sliding)
  kForwardContextFree,   // edges up to t known once all tuples <= t processed
                         // (punctuation windows)
  kForwardContextAware,  // edges before t may depend on tuples after t
                         // (sessions, multi-measure windows)
};

inline const char* ContextClassName(ContextClass c) {
  switch (c) {
    case ContextClass::kContextFree:
      return "CF";
    case ContextClass::kForwardContextFree:
      return "FCF";
    case ContextClass::kForwardContextAware:
      return "FCA";
  }
  return "?";
}

/// Callback used by Window::TriggerWindows to report ended windows
/// (the paper's `c.triggerWin(long startTime, long endTime)`).
class WindowCallback {
 public:
  virtual ~WindowCallback() = default;
  /// A window [start, end) has ended and its aggregate should be produced.
  virtual void OnWindow(Time start, Time end) = 0;
};

/// Read-only view of the operator's stream state, handed to context-aware
/// windows so their window-edge derivation can inspect stored tuples
/// ("We initialize context aware windows with a pointer to the Aggregate
/// Store", paper Section 5.4.2).
class StreamStateView {
 public:
  virtual ~StreamStateView() = default;

  /// Timestamp of the n-th most recent tuple with ts < t (1-based: n == 1 is
  /// the latest such tuple). Returns kNoTime if fewer than n tuples exist.
  virtual Time NthRecentTupleTime(Time t, int64_t n) const = 0;
};

/// Base interface of all window types (paper Section 5.4.2). A window maps a
/// continuous stream to a set of [start, end) ranges on its measure. The
/// slicing core only interacts with windows through this interface, so new
/// window types require no changes to the slicing logic.
class Window {
 public:
  virtual ~Window() = default;

  virtual Measure measure() const { return Measure::kEventTime; }
  virtual ContextClass context_class() const = 0;
  virtual std::string Name() const = 0;

  /// Sessions are context aware but never require splitting/recomputing
  /// slices (paper Section 5.1, condition 2); the workload characterization
  /// treats them specially.
  virtual bool IsSession() const { return false; }

  /// The next window edge (start or end timestamp) strictly after `t`,
  /// given the in-order context observed so far. This drives on-the-fly
  /// stream slicing (paper Section 5.3, Step 1). Returns kMaxTime if no
  /// upcoming edge is known.
  virtual Time GetNextEdge(Time t) const = 0;

  /// Like GetNextEdge but restricted to window *start* edges. For in-order
  /// streams it suffices to begin slices at window starts [10]; for
  /// out-of-order streams slices must also begin at window ends. Defaults to
  /// GetNextEdge (start and end edge sets coincide for many window types).
  virtual Time GetNextStartEdge(Time t) const { return GetNextEdge(t); }

  /// The latest window edge at or before `t` (kNoTime if none). Used to open
  /// a new slice at the correct boundary after an event-time jump.
  virtual Time LastEdgeAtOrBefore(Time t) const = 0;

  /// Whether `t` is an edge this window requires a slice boundary at. The
  /// slice manager merges adjacent slices only when no window requires the
  /// boundary between them.
  virtual bool IsWindowEdge(Time t) const = 0;

  /// Reports all windows whose end lies in (prev_wm, curr_wm], ordered by
  /// end timestamp (paper: `triggerWin(Callback, prevWM, currWM)`).
  virtual void TriggerWindows(WindowCallback& cb, Time prev_wm,
                              Time curr_wm) = 0;

  /// The earliest timestamp whose slices a pending or future window of this
  /// type may still read, given watermark `wm`. Slices entirely before this
  /// point minus the allowed lateness can be evicted. kNoTime means "keep
  /// everything" (no safe bound known).
  virtual Time EvictionSafePoint(Time wm) const { return wm; }

  /// Drops window-internal state (sessions, punctuation edges) that lies
  /// entirely before `t` (outside the allowed lateness).
  virtual void EvictState(Time t) { (void)t; }

  /// Snapshot support: serializes window-internal context (open sessions,
  /// punctuation edges, threshold frames). Context-free windows are
  /// stateless — their edges are pure functions of the definition — so the
  /// default writes/reads nothing.
  virtual void SerializeState(state::Writer& w) const { (void)w; }
  virtual void DeserializeState(state::Reader& r) { (void)r; }
};

using WindowPtr = std::shared_ptr<Window>;

/// Convenience base for context-free windows.
class ContextFreeWindow : public Window {
 public:
  ContextClass context_class() const override {
    return ContextClass::kContextFree;
  }
};

/// Modifications a context-aware window requests on the slice structure
/// after observing a tuple (in-order or out-of-order). The slice manager
/// translates them into its three fundamental operations
/// (merge / split / update, paper Section 5.2).
struct ContextModifications {
  /// Moves the bounds of the slice range currently holding a window/session.
  struct Resize {
    /// Any timestamp inside the old extent, used to locate the slices.
    Time locate;
    Time new_start;
    Time new_end;
  };

  /// Ensure a slice boundary exists at each timestamp. If tuples lie on both
  /// sides inside one slice this is a *split* — the expensive operation that
  /// recomputes both halves from stored tuples (paper Section 5.2).
  std::vector<Time> split_edges;
  /// All boundaries strictly inside (first, second) became obsolete; the
  /// slice manager merges the spanned slices (unless another window still
  /// requires a boundary).
  std::vector<std::pair<Time, Time>> merged_ranges;
  /// Slice-extent metadata updates (session extensions).
  std::vector<Resize> resizes;
  /// Window instances whose content changed after they may already have been
  /// emitted; the window manager re-emits them if they ended before the
  /// current watermark (allowed-lateness updates).
  std::vector<std::pair<Time, Time>> changed_windows;

  bool Empty() const {
    return split_edges.empty() && merged_ranges.empty() && resizes.empty() &&
           changed_windows.empty();
  }
};

/// Base interface of context-aware windows: the slice manager notifies them
/// of every tuple (paper: `window.notifyContext(callbackObj, tuple)`), and
/// they answer with the slice-structure changes the new context implies.
class ContextAwareWindow : public Window {
 public:
  /// Called once per tuple, before the tuple is added to its slice.
  virtual ContextModifications ProcessContext(const Tuple& t) = 0;

  /// Gives the window access to operator state (stored tuples) for
  /// trigger-time edge derivation. Called once when the window is added.
  virtual void Bind(const StreamStateView* view) { view_ = view; }

 protected:
  const StreamStateView* view_ = nullptr;
};

}  // namespace scotty

#endif  // SCOTTY_WINDOWS_WINDOW_H_
