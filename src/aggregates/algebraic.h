#ifndef SCOTTY_AGGREGATES_ALGEBRAIC_H_
#define SCOTTY_AGGREGATES_ALGEBRAIC_H_

#include <cmath>
#include <string>

#include "aggregates/aggregate_function.h"
#include "aggregates/kernels.h"

namespace scotty {

/// AVG. Algebraic (partial = <sum, count>), commutative, invertible.
class AvgAggregation : public AggregateFunction {
 public:
  Partial Lift(const Tuple& t) const override {
    return Partial{Partial::Storage{AvgState{t.value, 1}}};
  }

  void Combine(Partial& into, const Partial& other) const override {
    if (other.IsIdentity()) return;
    if (into.IsIdentity()) {
      into = other;
      return;
    }
    AvgState& a = into.Get<AvgState>();
    const AvgState& b = other.Get<AvgState>();
    a.sum += b.sum;
    a.count += b.count;
  }

  Value Lower(const Partial& p) const override {
    if (p.IsIdentity()) return Value{};
    const AvgState& a = p.Get<AvgState>();
    if (a.count == 0) return Value{};
    return Value{a.sum / static_cast<double>(a.count)};
  }

  void Invert(Partial& from, const Partial& removed) const override {
    if (removed.IsIdentity()) return;
    AvgState& a = from.Get<AvgState>();
    const AvgState& b = removed.Get<AvgState>();
    a.sum -= b.sum;
    a.count -= b.count;
  }

  /// Batched kernel: per-tuple Combine with a singleton is `sum += v;
  /// count += 1` — the same left-to-right fold runs on a local state.
  void LiftCombineBatch(std::span<const Tuple> batch,
                        Partial& into) const override {
    if (batch.empty()) return;
    size_t i = 0;
    AvgState s;
    if (into.IsIdentity()) {
      s = AvgState{batch[0].value, 1};
      i = 1;
    } else {
      s = into.Get<AvgState>();
    }
    for (; i < batch.size(); ++i) {
      s.sum += batch[i].value;
      s.count += 1;
    }
    into.Set(s);
  }

  /// Columnar kernel: serial sum fold over the value column plus an O(1)
  /// count bump — same fold order as the per-tuple path.
  void LiftCombineColumns(const TupleColumnsView& cols,
                          Partial& into) const override {
    if (cols.empty()) return;
    size_t i = 0;
    AvgState s;
    if (into.IsIdentity()) {
      s = AvgState{cols.value[0], 1};
      i = 1;
    } else {
      s = into.Get<AvgState>();
    }
    s.sum = simd::SumColumn(cols.value + i, cols.size - i, s.sum);
    s.count += static_cast<int64_t>(cols.size - i);
    into.Set(s);
  }

  bool IsInvertible() const override { return true; }
  AggClass Class() const override { return AggClass::kAlgebraic; }
  std::string Name() const override { return "avg"; }
};

/// Geometric mean. Algebraic (partial = <sum of logs, count>), invertible.
/// Defined for positive values; non-positive inputs contribute log of a
/// clamped epsilon to keep the pipeline total.
class GeometricMeanAggregation : public AggregateFunction {
 public:
  Partial Lift(const Tuple& t) const override {
    const double v = t.value > 1e-300 ? t.value : 1e-300;
    return Partial{Partial::Storage{GeoState{std::log(v), 1}}};
  }

  void Combine(Partial& into, const Partial& other) const override {
    if (other.IsIdentity()) return;
    if (into.IsIdentity()) {
      into = other;
      return;
    }
    GeoState& a = into.Get<GeoState>();
    const GeoState& b = other.Get<GeoState>();
    a.log_sum += b.log_sum;
    a.count += b.count;
  }

  Value Lower(const Partial& p) const override {
    if (p.IsIdentity()) return Value{};
    const GeoState& g = p.Get<GeoState>();
    if (g.count == 0) return Value{};
    return Value{std::exp(g.log_sum / static_cast<double>(g.count))};
  }

  void Invert(Partial& from, const Partial& removed) const override {
    if (removed.IsIdentity()) return;
    GeoState& a = from.Get<GeoState>();
    const GeoState& b = removed.Get<GeoState>();
    a.log_sum -= b.log_sum;
    a.count -= b.count;
  }

  bool IsInvertible() const override { return true; }
  AggClass Class() const override { return AggClass::kAlgebraic; }
  std::string Name() const override { return "geometric-mean"; }
};

/// Sample standard deviation. Algebraic via Chan et al.'s parallel variance
/// combination: partial = <count, mean, M2>. Invertible.
class StdDevAggregation : public AggregateFunction {
 public:
  Partial Lift(const Tuple& t) const override {
    return Partial{Partial::Storage{VarState{1, t.value, 0.0}}};
  }

  void Combine(Partial& into, const Partial& other) const override {
    if (other.IsIdentity()) return;
    if (into.IsIdentity()) {
      into = other;
      return;
    }
    VarState& a = into.Get<VarState>();
    const VarState& b = other.Get<VarState>();
    const double delta = b.mean - a.mean;
    const int64_t n = a.count + b.count;
    a.m2 += b.m2 + delta * delta * static_cast<double>(a.count) *
                       static_cast<double>(b.count) / static_cast<double>(n);
    a.mean += delta * static_cast<double>(b.count) / static_cast<double>(n);
    a.count = n;
  }

  Value Lower(const Partial& p) const override {
    if (p.IsIdentity()) return Value{};
    const VarState& v = p.Get<VarState>();
    if (v.count < 2) return Value{0.0};
    return Value{std::sqrt(v.m2 / static_cast<double>(v.count - 1))};
  }

  void Invert(Partial& from, const Partial& removed) const override {
    if (removed.IsIdentity()) return;
    VarState& a = from.Get<VarState>();
    const VarState& b = removed.Get<VarState>();
    const int64_t n = a.count - b.count;
    if (n <= 0) {
      a = VarState{};
      return;
    }
    // Reverse of the Chan combination: recover the mean and M2 of the
    // remainder set.
    const double mean_r =
        (a.mean * static_cast<double>(a.count) -
         b.mean * static_cast<double>(b.count)) /
        static_cast<double>(n);
    const double delta = b.mean - mean_r;
    double m2_r = a.m2 - b.m2 -
                  delta * delta * static_cast<double>(n) *
                      static_cast<double>(b.count) /
                      static_cast<double>(a.count);
    if (m2_r < 0.0) m2_r = 0.0;  // numerical floor
    a.count = n;
    a.mean = mean_r;
    a.m2 = m2_r;
  }

  /// Batched kernel: the Chan combination with a singleton <1, v, 0>,
  /// written so every operation (and its rounding) matches the generic
  /// Combine expression with b.count == 1 and b.m2 == 0 exactly.
  void LiftCombineBatch(std::span<const Tuple> batch,
                        Partial& into) const override {
    if (batch.empty()) return;
    size_t i = 0;
    VarState s;
    if (into.IsIdentity()) {
      s = VarState{1, batch[0].value, 0.0};
      i = 1;
    } else {
      s = into.Get<VarState>();
    }
    for (; i < batch.size(); ++i) {
      const double delta = batch[i].value - s.mean;
      const int64_t n = s.count + 1;
      // Combine computes ((delta*delta)*a.count)*b.count / n with
      // b.count == 1.0; multiplying by 1.0 is exact, so drop it.
      s.m2 += delta * delta * static_cast<double>(s.count) /
              static_cast<double>(n);
      s.mean += delta / static_cast<double>(n);
      s.count = n;
    }
    into.Set(s);
  }

  bool IsInvertible() const override { return true; }
  AggClass Class() const override { return AggClass::kAlgebraic; }
  std::string Name() const override { return "stddev"; }
};

/// MinCount / MaxCount: the extremum and its multiplicity. Algebraic,
/// commutative, not invertible.
template <bool kIsMin>
class ExtremumCountAggregation : public AggregateFunction {
 public:
  Partial Lift(const Tuple& t) const override {
    return Partial{Partial::Storage{ValCountState{t.value, 1}}};
  }

  void Combine(Partial& into, const Partial& other) const override {
    if (other.IsIdentity()) return;
    if (into.IsIdentity()) {
      into = other;
      return;
    }
    ValCountState& a = into.Get<ValCountState>();
    const ValCountState& b = other.Get<ValCountState>();
    if (a.count == 0) {
      a = b;
      return;
    }
    if (b.count == 0) return;
    const bool b_wins = kIsMin ? b.value < a.value : b.value > a.value;
    if (b_wins) {
      a = b;
    } else if (b.value == a.value) {
      a.count += b.count;
    }
  }

  Value Lower(const Partial& p) const override {
    if (p.IsIdentity()) return Value{};
    const ValCountState& s = p.Get<ValCountState>();
    if (s.count == 0) return Value{};
    return Value{ArgResult{s.value, s.count}};
  }

  bool TryRemove(Partial& from, const Partial& removed) const override {
    if (from.IsIdentity() || removed.IsIdentity()) return true;
    ValCountState& a = from.Get<ValCountState>();
    const ValCountState& b = removed.Get<ValCountState>();
    if (a.count == 0 || b.count == 0) return true;
    const bool worse = kIsMin ? b.value > a.value : b.value < a.value;
    if (worse) return true;  // extremum untouched
    if (b.value == a.value && a.count > b.count) {
      a.count -= b.count;  // extremum keeps other occurrences
      return true;
    }
    return false;
  }

  AggClass Class() const override { return AggClass::kAlgebraic; }
  std::string Name() const override { return kIsMin ? "min-count" : "max-count"; }
};

using MinCountAggregation = ExtremumCountAggregation<true>;
using MaxCountAggregation = ExtremumCountAggregation<false>;

/// ArgMin / ArgMax: the extremum and the timestamp of its first occurrence.
/// Algebraic, commutative, not invertible.
template <bool kIsMin>
class ArgExtremumAggregation : public AggregateFunction {
 public:
  Partial Lift(const Tuple& t) const override {
    return Partial{Partial::Storage{ArgValState{t.value, t.ts, false}}};
  }

  void Combine(Partial& into, const Partial& other) const override {
    if (other.IsIdentity()) return;
    if (into.IsIdentity()) {
      into = other;
      return;
    }
    ArgValState& a = into.Get<ArgValState>();
    const ArgValState& b = other.Get<ArgValState>();
    if (a.empty) {
      a = b;
      return;
    }
    if (b.empty) return;
    const bool b_wins = kIsMin ? b.value < a.value : b.value > a.value;
    // Tie-break on the earlier timestamp so combine order does not matter.
    if (b_wins || (b.value == a.value && b.arg < a.arg)) a = b;
  }

  Value Lower(const Partial& p) const override {
    if (p.IsIdentity()) return Value{};
    const ArgValState& s = p.Get<ArgValState>();
    if (s.empty) return Value{};
    return Value{ArgResult{s.value, s.arg}};
  }

  bool TryRemove(Partial& from, const Partial& removed) const override {
    if (from.IsIdentity() || removed.IsIdentity()) return true;
    const ArgValState& a = from.Get<ArgValState>();
    const ArgValState& b = removed.Get<ArgValState>();
    if (a.empty || b.empty) return true;
    const bool worse = kIsMin ? b.value > a.value : b.value < a.value;
    return worse || (b.value == a.value && b.arg != a.arg);
  }

  AggClass Class() const override { return AggClass::kAlgebraic; }
  std::string Name() const override { return kIsMin ? "arg-min" : "arg-max"; }
};

using ArgMinAggregation = ArgExtremumAggregation<true>;
using ArgMaxAggregation = ArgExtremumAggregation<false>;

/// M4 [26]: min, max, first and last value of each window; the four
/// aggregates sufficient for pixel-perfect line-chart rendering. Used by the
/// dashboard application of Section 6.4. Algebraic, commutative (first/last
/// are resolved by timestamps), not invertible.
class M4Aggregation : public AggregateFunction {
 public:
  Partial Lift(const Tuple& t) const override {
    M4State s;
    s.min = s.max = s.first_v = s.last_v = t.value;
    s.first_t = s.last_t = t.ts;
    s.first_seq = s.last_seq = t.seq;
    s.empty = false;
    return Partial{Partial::Storage{s}};
  }

  void Combine(Partial& into, const Partial& other) const override {
    if (other.IsIdentity()) return;
    if (into.IsIdentity()) {
      into = other;
      return;
    }
    M4State& a = into.Get<M4State>();
    const M4State& b = other.Get<M4State>();
    if (a.empty) {
      a = b;
      return;
    }
    if (b.empty) return;
    if (b.min < a.min) a.min = b.min;
    if (b.max > a.max) a.max = b.max;
    if (b.first_t < a.first_t ||
        (b.first_t == a.first_t && b.first_seq < a.first_seq)) {
      a.first_t = b.first_t;
      a.first_seq = b.first_seq;
      a.first_v = b.first_v;
    }
    if (b.last_t > a.last_t ||
        (b.last_t == a.last_t && b.last_seq > a.last_seq)) {
      a.last_t = b.last_t;
      a.last_seq = b.last_seq;
      a.last_v = b.last_v;
    }
  }

  Value Lower(const Partial& p) const override {
    if (p.IsIdentity()) return Value{};
    const M4State& s = p.Get<M4State>();
    if (s.empty) return Value{};
    return Value{M4Result{s.min, s.max, s.first_v, s.last_v}};
  }

  bool TryRemove(Partial& from, const Partial& removed) const override {
    if (from.IsIdentity() || removed.IsIdentity()) return true;
    const M4State& a = from.Get<M4State>();
    const M4State& b = removed.Get<M4State>();
    if (a.empty || b.empty) return true;
    // The removed value affects nothing if it is strictly inside the value
    // range and strictly inside the (first, last) time range.
    const bool inside_values = b.min > a.min && b.max < a.max;
    const bool inside_time =
        (b.first_t > a.first_t ||
         (b.first_t == a.first_t && b.first_seq > a.first_seq)) &&
        (b.last_t < a.last_t ||
         (b.last_t == a.last_t && b.last_seq < a.last_seq));
    return inside_values && inside_time;
  }

  /// Batched kernel: combine with a singleton degenerates to four compares
  /// per tuple on a local state (no Partial or M4State copies per tuple).
  /// All comparisons are exact, so order-of-fold is not a concern beyond
  /// matching the per-tuple tie-breaks, which this reproduces verbatim.
  void LiftCombineBatch(std::span<const Tuple> batch,
                        Partial& into) const override {
    if (batch.empty()) return;
    auto lift_state = [](const Tuple& t) {
      M4State s;
      s.min = s.max = s.first_v = s.last_v = t.value;
      s.first_t = s.last_t = t.ts;
      s.first_seq = s.last_seq = t.seq;
      s.empty = false;
      return s;
    };
    size_t i = 0;
    M4State s;
    if (into.IsIdentity()) {
      s = lift_state(batch[0]);
      i = 1;
    } else {
      s = into.Get<M4State>();
      if (s.empty) {
        s = lift_state(batch[0]);
        i = 1;
      }
    }
    for (; i < batch.size(); ++i) {
      const Tuple& t = batch[i];
      if (t.value < s.min) s.min = t.value;
      if (t.value > s.max) s.max = t.value;
      if (t.ts < s.first_t || (t.ts == s.first_t && t.seq < s.first_seq)) {
        s.first_t = t.ts;
        s.first_seq = t.seq;
        s.first_v = t.value;
      }
      if (t.ts > s.last_t || (t.ts == s.last_t && t.seq > s.last_seq)) {
        s.last_t = t.ts;
        s.last_seq = t.seq;
        s.last_v = t.value;
      }
    }
    into.Set(s);
  }

  AggClass Class() const override { return AggClass::kAlgebraic; }
  std::string Name() const override { return "m4"; }
};

}  // namespace scotty

#endif  // SCOTTY_AGGREGATES_ALGEBRAIC_H_
