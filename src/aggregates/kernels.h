#ifndef SCOTTY_AGGREGATES_KERNELS_H_
#define SCOTTY_AGGREGATES_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "common/time.h"

/// Vectorized column fold kernels for the SoA batch path.
///
/// Dispatch is two-level:
///  - Compile time: `-DSCOTTY_SIMD=OFF` (CMake) removes all vector code and
///    every mode resolves to the portable scalar fold. Non-x86 targets get
///    the same treatment automatically.
///  - Run time: the best mode the CPU supports is picked once (SSE2 is part
///    of the x86-64 baseline; AVX2 is probed via cpuid). Tests and the
///    differential fuzzer can pin a specific mode with SetModeForTesting to
///    cross-check kernels against each other and against the oracle.
///
/// Bit-identity contract (the invariant the differential fuzzer enforces):
/// every kernel must produce results bit-identical to the scalar per-tuple
/// fold in processing order. Concretely:
///  - SumColumn NEVER reassociates floating-point adds: all modes keep the
///    serial left-to-right fold. A lane-split sum would change rounding; a
///    serial addsd chain already retires one element per FP-add latency
///    (~750M elem/s at 3 GHz), far above stream ingest rates, so the SoA
///    win comes from memory layout, not reassociation.
///  - Min/MaxColumn do run lane-parallel (min/max selection over doubles is
///    order-insensitive *by value* for finite, non-NaN inputs without mixed
///    ±0.0 — the domain the generators produce and the scalar fallback
///    remains the reference for anything outside it).
///  - Count-style kernels are exact integer arithmetic.
namespace scotty::simd {

enum class KernelMode : uint8_t {
  kAuto = 0,  // resolve to the best supported mode
  kScalar = 1,
  kSse2 = 2,
  kAvx2 = 3,
};

/// Best mode this binary+CPU supports (kScalar when SCOTTY_SIMD=OFF or
/// non-x86).
KernelMode BestSupportedMode();

/// The mode kernels actually run in: the test override if set (clamped to
/// what is supported), else BestSupportedMode().
KernelMode ActiveMode();

/// Pin the kernel mode (kAuto clears the override). An unsupported request
/// clamps down to BestSupportedMode() so corpus reproducer lines replay on
/// any machine/build. Not thread-safe against concurrent kernel calls; test
/// and fuzzer use only.
void SetModeForTesting(KernelMode mode);

const char* ModeName(KernelMode mode);
/// Parses "auto" | "scalar" | "sse2" | "avx2". Returns false on anything
/// else.
bool ParseMode(std::string_view name, KernelMode* out);

/// Serial left-to-right sum fold: acc + v[0] + v[1] + ... (never
/// reassociated; see contract above).
double SumColumn(const double* v, size_t n, double acc);

/// Fold of std::min/std::max over the column seeded with m. Lane-parallel
/// under SSE2/AVX2.
double MinColumn(const double* v, size_t n, double m);
double MaxColumn(const double* v, size_t n, double m);

/// Length of the longest prefix of ts[0..n) that is non-decreasing starting
/// from last_ts (ts[0] >= last_ts, ts[i] >= ts[i-1]) with every element
/// < bound. This is the foldable-run scan of
/// GeneralSlicingOperator::ProcessTupleColumns; AVX2 scans 4 timestamps per
/// step (the required 64-bit compares predate nothing older than AVX2, so
/// SSE2 mode uses the scalar scan).
size_t MonotoneRunLength(const Time* ts, size_t n, Time last_ts, Time bound);

}  // namespace scotty::simd

#endif  // SCOTTY_AGGREGATES_KERNELS_H_
