#include "runtime/parallel_executor.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iterator>

#include "core/general_slicing_operator.h"
#include "query/query_registry.h"
#include "runtime/keyed_operator.h"
#include "runtime/local_slice_store.h"
#include "state/serde.h"

namespace scotty {

namespace {

// Combined parallel snapshot blob: tag + version + worker count + one
// length-prefixed state per worker. The tag makes foreign bytes fail fast;
// the version gates format evolution (v2 added rescaled restore).
constexpr uint32_t kParallelSnapshotTag = 0x50534E50;  // "PSNP"
constexpr uint8_t kParallelSnapshotVersion = 2;

}  // namespace

SpscQueue::SpscQueue(size_t capacity)
    : cap_(capacity), mask_(capacity - 1), ctrl_(kCtrlCapacity) {
  if (capacity == 0 || (capacity & (capacity - 1)) != 0 ||
      capacity % kBatchAlignElems != 0) {
    std::fprintf(stderr,
                 "SpscQueue: capacity must be a power of two and a multiple "
                 "of %zu, got %zu\n",
                 kBatchAlignElems, capacity);
    std::abort();
  }
  static_assert((kCtrlCapacity & (kCtrlCapacity - 1)) == 0);
  ring_.Reserve(capacity);
}

TupleColumnsView SpscQueue::RingView(size_t pos, size_t n) const {
  // The ring's punct column is always materialized (CopyIn zero-fills when
  // the producer had none), so the view can expose it unconditionally.
  return TupleColumnsView{ring_.ts() + pos,  ring_.value() + pos,
                          ring_.key() + pos, ring_.seq() + pos,
                          ring_.punct() + pos, n};
}

void SpscQueue::CopyIn(size_t pos, const TupleColumnsView& v) {
  std::memcpy(ring_.mutable_ts() + pos, v.ts, v.size * sizeof(Time));
  std::memcpy(ring_.mutable_value() + pos, v.value, v.size * sizeof(double));
  std::memcpy(ring_.mutable_key() + pos, v.key, v.size * sizeof(int64_t));
  std::memcpy(ring_.mutable_seq() + pos, v.seq, v.size * sizeof(uint64_t));
  if (v.punct != nullptr) {
    std::memcpy(ring_.mutable_punct() + pos, v.punct, v.size);
  } else {
    std::memset(ring_.mutable_punct() + pos, 0, v.size);
  }
}

void SpscQueue::PushTuples(const TupleColumnsView& cols) {
  size_t done = 0;
  while (done < cols.size) {
    const uint64_t tail = data_tail_.load(std::memory_order_relaxed);
    uint64_t free = cap_ - (tail - data_head_cache_);
    while (free == 0) {
      data_head_cache_ = data_head_.load(std::memory_order_acquire);
      free = cap_ - (tail - data_head_cache_);
      if (free == 0) std::this_thread::yield();  // backpressure
    }
    const size_t chunk =
        std::min(cols.size - done, static_cast<size_t>(free));
    const size_t pos = static_cast<size_t>(tail) & mask_;
    const size_t first = std::min(chunk, cap_ - pos);
    CopyIn(pos, cols.Subview(done, first));
    if (chunk > first) CopyIn(0, cols.Subview(done + first, chunk - first));
    data_tail_.store(tail + chunk, std::memory_order_release);
    done += chunk;
  }
}

size_t SpscQueue::TryPushTuplesFor(const TupleColumnsView& cols,
                                   std::chrono::nanoseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  size_t done = 0;
  while (done < cols.size) {
    const uint64_t tail = data_tail_.load(std::memory_order_relaxed);
    uint64_t free = cap_ - (tail - data_head_cache_);
    if (free == 0) {
      data_head_cache_ = data_head_.load(std::memory_order_acquire);
      free = cap_ - (tail - data_head_cache_);
    }
    if (free == 0) {
      // The deadline check sits on the ring-full path only, so the fast
      // path costs nothing extra over PushTuples.
      if (std::chrono::steady_clock::now() >= deadline) return done;
      std::this_thread::yield();
      continue;
    }
    const size_t chunk =
        std::min(cols.size - done, static_cast<size_t>(free));
    const size_t pos = static_cast<size_t>(tail) & mask_;
    const size_t first = std::min(chunk, cap_ - pos);
    CopyIn(pos, cols.Subview(done, first));
    if (chunk > first) CopyIn(0, cols.Subview(done + first, chunk - first));
    data_tail_.store(tail + chunk, std::memory_order_release);
    done += chunk;
  }
  return done;
}

void SpscQueue::PushControl(Control c) {
  // Stamp the boundary: everything pushed so far precedes this control.
  c.data_pos = data_tail_.load(std::memory_order_relaxed);
  const uint64_t tail = ctrl_tail_.load(std::memory_order_relaxed);
  while (tail - ctrl_head_cache_ >= kCtrlCapacity) {
    ctrl_head_cache_ = ctrl_head_.load(std::memory_order_acquire);
    if (tail - ctrl_head_cache_ >= kCtrlCapacity) {
      std::this_thread::yield();  // backpressure
    }
  }
  ctrl_[static_cast<size_t>(tail) & (kCtrlCapacity - 1)] = c;
  ctrl_tail_.store(tail + 1, std::memory_order_release);
}

bool SpscQueue::TryPushControlFor(Control c, std::chrono::nanoseconds timeout) {
  c.data_pos = data_tail_.load(std::memory_order_relaxed);
  const uint64_t tail = ctrl_tail_.load(std::memory_order_relaxed);
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (tail - ctrl_head_cache_ >= kCtrlCapacity) {
    ctrl_head_cache_ = ctrl_head_.load(std::memory_order_acquire);
    if (tail - ctrl_head_cache_ >= kCtrlCapacity) {
      if (std::chrono::steady_clock::now() >= deadline) return false;
      std::this_thread::yield();
    }
  }
  ctrl_[static_cast<size_t>(tail) & (kCtrlCapacity - 1)] = c;
  ctrl_tail_.store(tail + 1, std::memory_order_release);
  return true;
}

double SpscQueue::ApproxOccupancy() const {
  const uint64_t tail = data_tail_.load(std::memory_order_relaxed);
  const uint64_t head = data_head_.load(std::memory_order_relaxed);
  // Both loads are relaxed and unordered, so a freshly-advanced head can
  // overtake a stale tail read; clamp instead of wrapping to 2^64.
  if (tail <= head) return 0.0;
  return static_cast<double>(tail - head) / static_cast<double>(cap_);
}

size_t SpscQueue::PopTuples(TupleBatchSoA* out, size_t max_n) {
  const uint64_t head = data_head_.load(std::memory_order_relaxed);
  uint64_t avail = data_tail_cache_ - head;
  if (avail == 0) {
    data_tail_cache_ = data_tail_.load(std::memory_order_acquire);
    avail = data_tail_cache_ - head;
  }
  // Refresh the control cache AFTER the data cache (see the class comment):
  // once the data acquire above observes tuples past some control's
  // data_pos, this control acquire is guaranteed to observe that control,
  // so the bound below can never be missed.
  const uint64_t chead = ctrl_head_.load(std::memory_order_relaxed);
  if (chead == ctrl_tail_cache_) {
    ctrl_tail_cache_ = ctrl_tail_.load(std::memory_order_acquire);
  }
  if (chead != ctrl_tail_cache_) {
    const uint64_t bound =
        ctrl_[static_cast<size_t>(chead) & (kCtrlCapacity - 1)].data_pos;
    assert(bound >= head && "consumed past a pending control boundary");
    avail = std::min(avail, bound - head);
  }
  if (avail == 0) return 0;
  const size_t n = std::min(max_n, static_cast<size_t>(avail));
  const size_t pos = static_cast<size_t>(head) & mask_;
  const size_t first = std::min(n, cap_ - pos);
  out->AppendView(RingView(pos, first));
  if (n > first) out->AppendView(RingView(0, n - first));
  data_head_.store(head + n, std::memory_order_release);
  return n;
}

bool SpscQueue::PopControl(Control* out) {
  const uint64_t chead = ctrl_head_.load(std::memory_order_relaxed);
  if (chead == ctrl_tail_cache_) {
    ctrl_tail_cache_ = ctrl_tail_.load(std::memory_order_acquire);
    if (chead == ctrl_tail_cache_) return false;
  }
  const Control& c = ctrl_[static_cast<size_t>(chead) & (kCtrlCapacity - 1)];
  // Deliver only once every tuple pushed before the control is consumed,
  // preserving the producer's exact tuple/control interleaving.
  if (data_head_.load(std::memory_order_relaxed) < c.data_pos) return false;
  *out = c;
  ctrl_head_.store(chead + 1, std::memory_order_release);
  return true;
}

ParallelExecutor::ParallelExecutor(
    size_t num_workers,
    std::function<std::unique_ptr<WindowOperator>()> factory)
    : ParallelExecutor(num_workers, std::move(factory), Options{}) {}

ParallelExecutor::ParallelExecutor(
    size_t num_workers,
    std::function<std::unique_ptr<WindowOperator>()> factory, Options opts)
    : opts_(opts), num_workers_(num_workers), factory_(std::move(factory)) {
  assert(num_workers_ > 0);
  if (opts_.shared_preagg) {
    operators_.push_back(factory_());
    shared_op_ = dynamic_cast<GeneralSlicingOperator*>(operators_[0].get());
    if (shared_op_ == nullptr) {
      shared_registry_ = dynamic_cast<QueryRegistry*>(operators_[0].get());
      if (shared_registry_ != nullptr) {
        shared_op_ = shared_registry_->engine();
      }
    }
    if (shared_op_ == nullptr || opts_.preagg_slice_len <= 0) {
      std::fprintf(stderr,
                   "ParallelExecutor: shared_preagg requires a "
                   "GeneralSlicingOperator or QueryRegistry factory and a "
                   "positive preagg_slice_len\n");
      std::abort();
    }
    assert(shared_op_->queries().AllCommutative() &&
           "shared pre-aggregation merges in arbitrary worker order");
  } else {
    for (size_t i = 0; i < num_workers_; ++i) {
      operators_.push_back(factory_());
    }
  }
  for (size_t i = 0; i < num_workers_; ++i) {
    queues_.push_back(std::make_unique<SpscQueue>(opts_.queue_capacity));
  }
  staging_.resize(num_workers_);
  if (opts_.batch_size > 1) {
    for (TupleBatchSoA& s : staging_) s.Reserve(opts_.batch_size);
  }
  workers_.reserve(num_workers_);
}

ParallelExecutor::~ParallelExecutor() {
  if (started_ && !finished_) Finish();
}

void ParallelExecutor::Start() {
  assert(!started_);
  started_ = true;
  for (size_t i = 0; i < num_workers_; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

size_t ParallelExecutor::WorkerFor(const Tuple& t) const {
  // Key partitioning: consistent routing keeps all tuples of a key on one
  // worker, so per-key window semantics are preserved.
  return WorkerIndexForKey(t.key, num_workers_);
}

void ParallelExecutor::FlushStaging(size_t w) {
  TupleBatchSoA& s = staging_[w];
  if (s.empty()) return;
  queues_[w]->PushTuples(s.View());
  s.Clear();
}

void ParallelExecutor::FlushAllStaging() {
  for (size_t w = 0; w < staging_.size(); ++w) FlushStaging(w);
}

void ParallelExecutor::Push(const Tuple& t) {
  const size_t w = opts_.shared_preagg ? rr_worker_ : WorkerFor(t);
  if (opts_.batch_size <= 1) {
    const uint8_t punct = t.is_punctuation ? 1 : 0;
    queues_[w]->PushTuples(
        TupleColumnsView{&t.ts, &t.value, &t.key, &t.seq, &punct, 1});
    if (opts_.shared_preagg) AdvanceRoundRobin();
    return;
  }
  staging_[w].PushBack(t);
  if (staging_[w].size() >= opts_.batch_size) {
    FlushStaging(w);
    if (opts_.shared_preagg) AdvanceRoundRobin();
  }
}

bool ParallelExecutor::TryPushFor(const Tuple& t,
                                  std::chrono::nanoseconds timeout) {
  const size_t w = opts_.shared_preagg ? rr_worker_ : WorkerFor(t);
  // Anything staged for this worker precedes the tuple in arrival order;
  // with batch_size <= 1 (the admission-controlled configuration) staging
  // is always empty and this is a no-op.
  FlushStaging(w);
  const uint8_t punct = t.is_punctuation ? 1 : 0;
  const TupleColumnsView one{&t.ts, &t.value, &t.key, &t.seq, &punct, 1};
  if (queues_[w]->TryPushTuplesFor(one, timeout) != 1) return false;
  if (opts_.shared_preagg) AdvanceRoundRobin();
  return true;
}

void ParallelExecutor::PushBatch(std::span<const Tuple> tuples) {
  for (const Tuple& t : tuples) Push(t);
}

void ParallelExecutor::PushColumns(const TupleColumnsView& cols) {
  if (!opts_.shared_preagg) {
    if (opts_.batch_size <= 1) {
      for (size_t i = 0; i < cols.size; ++i) Push(cols.Get(i));
      return;
    }
    for (size_t i = 0; i < cols.size; ++i) {
      const size_t w = WorkerIndexForKey(cols.key[i], num_workers_);
      staging_[w].PushBack(cols.Get(i));
      if (staging_[w].size() >= opts_.batch_size) FlushStaging(w);
    }
    return;
  }
  // Shared mode: tuple-to-worker placement is semantically free (buckets
  // are keyed by timestamp, merges commute), so full chunks forward
  // zero-copy from the caller's columns straight into the worker ring.
  const size_t chunk_len = std::max<size_t>(size_t{1}, opts_.batch_size);
  size_t i = 0;
  while (i < cols.size) {
    TupleBatchSoA& s = staging_[rr_worker_];
    if (s.empty() && cols.size - i >= chunk_len) {
      queues_[rr_worker_]->PushTuples(cols.Subview(i, chunk_len));
      i += chunk_len;
      AdvanceRoundRobin();
      continue;
    }
    const size_t take = std::min(chunk_len - s.size(), cols.size - i);
    s.AppendView(cols.Subview(i, take));
    i += take;
    if (s.size() >= chunk_len) {
      FlushStaging(rr_worker_);
      AdvanceRoundRobin();
    }
  }
}

void ParallelExecutor::PushWatermark(Time wm) {
  // Staged tuples precede the watermark in arrival order; transfer them
  // first so every worker observes the exact unbatched item sequence.
  FlushAllStaging();
  if (opts_.shared_preagg) {
    // The barrier entry must exist before any worker can arrive at it.
    std::lock_guard<std::mutex> lk(merge_mu_);
    barriers_.push_back(Barrier{wm, num_workers_});
  }
  SpscQueue::Control c;
  c.kind = SpscQueue::Control::Kind::kWatermark;
  c.watermark = wm;
  for (auto& q : queues_) q->PushControl(c);
}

bool ParallelExecutor::TryPushWatermarkFor(Time wm,
                                           std::chrono::nanoseconds timeout) {
  assert(!opts_.shared_preagg &&
         "timed watermarks would leak shared-mode barrier entries");
  FlushAllStaging();
  SpscQueue::Control c;
  c.kind = SpscQueue::Control::Kind::kWatermark;
  c.watermark = wm;
  bool ok = true;
  for (auto& q : queues_) ok &= q->TryPushControlFor(c, timeout);
  return ok;
}

void ParallelExecutor::Finish() {
  if (!started_ || finished_) return;
  FlushAllStaging();
  SpscQueue::Control stop;
  stop.kind = SpscQueue::Control::Kind::kStop;
  for (auto& q : queues_) q->PushControl(stop);
  for (std::thread& t : workers_) t.join();
  finished_ = true;
}

std::vector<uint8_t> ParallelExecutor::SnapshotAtBarrier() {
  assert(started_ && !finished_);
  if (opts_.shared_preagg) return {};  // see header: no capturable barrier
  for (const auto& op : operators_) {
    if (!op->SupportsSnapshot()) return {};
  }
  snap_slots_.assign(queues_.size(), {});
  snap_remaining_.store(queues_.size(), std::memory_order_release);
  // Staged tuples precede the barrier, exactly like PushWatermark.
  FlushAllStaging();
  SpscQueue::Control c;
  c.kind = SpscQueue::Control::Kind::kSnapshot;
  for (auto& q : queues_) q->PushControl(c);
  while (snap_remaining_.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
  // Combine per-worker states into one length-prefixed blob. Worker count
  // is recorded so restore can re-partition (keyed state) or reject (any
  // other) a topology mismatch.
  std::vector<uint8_t> blob = BuildParallelSnapshotBlob(snap_slots_);
  snap_slots_.clear();
  return blob;
}

bool ParallelExecutor::RestoreOperators(const std::vector<uint8_t>& blob,
                                        std::string* error) {
  assert(!started_);
  auto fail = [&](const std::string& why) {
    // Never leave a half-restored topology behind: rebuild every operator
    // fresh so the executor stays usable for a from-scratch run.
    for (auto& op : operators_) op = factory_();
    if (error != nullptr) *error = why;
    return false;
  };
  std::vector<std::vector<uint8_t>> states;
  std::string parse_err;
  if (!ParseParallelSnapshotBlob(blob, &states, &parse_err)) {
    return fail(parse_err);
  }
  if (states.size() != operators_.size()) {
    // Rescaled restore: W → W′ works when (and only when) the states are
    // keyed, because keyed state decomposes into per-key units that re-route
    // with the same hash live tuples use.
    std::string why;
    std::vector<std::vector<uint8_t>> rescaled;
    if (!RepartitionKeyedStates(states, operators_.size(), &rescaled, &why)) {
      return fail("worker count mismatch: snapshot has " +
                  std::to_string(states.size()) + ", executor has " +
                  std::to_string(operators_.size()) + "; " + why);
    }
    states = std::move(rescaled);
  }
  for (size_t i = 0; i < operators_.size(); ++i) {
    state::Reader worker_r(states[i]);
    operators_[i]->DeserializeState(worker_r);
    if (!worker_r.ok() || !worker_r.AtEnd()) {
      return fail("worker " + std::to_string(i) + " state decode failed");
    }
  }
  return true;
}

std::vector<uint8_t> BuildParallelSnapshotBlob(
    const std::vector<std::vector<uint8_t>>& worker_states) {
  state::Writer w;
  w.Tag(kParallelSnapshotTag);
  w.U8(kParallelSnapshotVersion);
  w.U64(worker_states.size());
  for (const std::vector<uint8_t>& s : worker_states) {
    w.U64(s.size());
    w.Bytes(s.data(), s.size());
  }
  return w.Take();
}

bool ParseParallelSnapshotBlob(const std::vector<uint8_t>& blob,
                               std::vector<std::vector<uint8_t>>* out,
                               std::string* error) {
  auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  state::Reader r(blob);
  r.Tag(kParallelSnapshotTag);
  const uint8_t version = r.U8();
  if (!r.ok() || version != kParallelSnapshotVersion) {
    return fail("not a parallel snapshot blob (bad tag or version)");
  }
  const uint64_t workers = r.U64();
  if (!r.ok() || workers == 0 || workers > r.remaining()) {
    return fail("parallel snapshot header corrupt");
  }
  std::vector<std::vector<uint8_t>> states(static_cast<size_t>(workers));
  for (size_t i = 0; i < states.size(); ++i) {
    const uint64_t size = r.U64();
    if (!r.ok() || size > r.remaining()) {
      return fail("worker " + std::to_string(i) + " state truncated");
    }
    states[i].resize(static_cast<size_t>(size));
    r.Bytes(states[i].data(), states[i].size());
  }
  if (!r.AtEnd()) return fail("trailing bytes after worker states");
  *out = std::move(states);
  return true;
}

bool RepartitionKeyedStates(
    const std::vector<std::vector<uint8_t>>& worker_states,
    size_t new_workers, std::vector<std::vector<uint8_t>>* out,
    std::string* error) {
  auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  if (new_workers == 0) return fail("cannot re-partition onto zero workers");
  std::vector<KeyedWindowOperator::KeyedStateParts> buckets(new_workers);
  Time last_wm = kNoTime;
  for (size_t i = 0; i < worker_states.size(); ++i) {
    KeyedWindowOperator::KeyedStateParts parts;
    if (!KeyedWindowOperator::ParseKeyedState(worker_states[i], &parts)) {
      return fail("worker " + std::to_string(i) +
                  " state is not a keyed payload (non-keyed operator state "
                  "cannot be re-partitioned)");
    }
    // Watermarks were broadcast, so all workers agree except ones that
    // never saw one; merge to the furthest progress.
    last_wm = std::max(last_wm, parts.last_wm);
    for (auto& kv : parts.keys) {
      const size_t w = ParallelExecutor::WorkerIndexForKey(kv.first,
                                                           new_workers);
      buckets[w].keys.push_back(std::move(kv));
    }
    for (auto& res : parts.results) {
      // Pending (undrained) results re-emit from whichever worker owns the
      // key after the rescale — exactly once, like the tuples that formed
      // them would.
      const size_t w =
          ParallelExecutor::WorkerIndexForKey(res.key, new_workers);
      buckets[w].results.push_back(std::move(res));
    }
  }
  out->clear();
  out->reserve(new_workers);
  for (KeyedWindowOperator::KeyedStateParts& b : buckets) {
    b.last_wm = last_wm;
    out->push_back(KeyedWindowOperator::BuildKeyedState(std::move(b)));
  }
  return true;
}

void ParallelExecutor::WorkerLoop(size_t i) {
  if (opts_.shared_preagg) {
    SharedWorkerLoop(i);
    return;
  }
  SpscQueue& q = *queues_[i];
  WindowOperator& op = *operators_[i];
  const size_t batch = std::max<size_t>(size_t{1}, opts_.batch_size);
  TupleBatchSoA buf(batch);
  std::vector<WindowResult> drained;
  uint64_t results = 0;
  SpscQueue::Control c;
  while (true) {
    if (opts_.worker_tick_hook) opts_.worker_tick_hook(i);
    buf.Clear();
    if (q.PopTuples(&buf, batch) > 0) {
      // Straight from the SoA ring into the columnar ingestion hot path:
      // the batch was never an array of structs at any point.
      op.ProcessTupleColumns(buf.View());
      continue;
    }
    if (!q.PopControl(&c)) {
      std::this_thread::yield();
      continue;
    }
    switch (c.kind) {
      case SpscQueue::Control::Kind::kWatermark:
        op.ProcessWatermark(c.watermark);
        drained.clear();
        op.TakeResultsInto(&drained);
        results += drained.size();
        if (opts_.result_sink) opts_.result_sink(drained);
        break;
      case SpscQueue::Control::Kind::kSnapshot: {
        // Serialize between two items of this worker's own stream: the
        // state captured here is exactly the state a sequential run of
        // this worker's item sequence would have at this point.
        state::Writer w;
        op.SerializeState(w);
        snap_slots_[i] = w.Take();
        snap_remaining_.fetch_sub(1, std::memory_order_acq_rel);
        break;
      }
      case SpscQueue::Control::Kind::kStop:
        drained.clear();
        op.TakeResultsInto(&drained);
        results += drained.size();
        if (opts_.result_sink) opts_.result_sink(drained);
        total_results_.fetch_add(results);
        return;
    }
  }
}

void ParallelExecutor::SharedWorkerLoop(size_t i) {
  SpscQueue& q = *queues_[i];
  const size_t batch = std::max<size_t>(size_t{1}, opts_.batch_size);
  TupleBatchSoA buf(batch);
  // All heavy lifting happens here, unsynchronized: tuples fold into this
  // worker's private buckets; only finished buckets cross the mutex.
  ThreadLocalSliceStore local(opts_.preagg_slice_len,
                              shared_op_->queries().aggs);
  // With a registry on top, merges and watermarks route through it so its
  // derived-query bookkeeping (granule invalidation, post-watermark sweeps,
  // per-query demux) stays in sync with the engine.
  const auto merge = [&](const ThreadLocalSliceStore::Bucket& b) {
    if (shared_registry_ != nullptr) {
      shared_registry_->MergePreAggregatedSlice(b.start, b.end, b.t_first,
                                                b.t_last, b.count, b.partials);
    } else {
      shared_op_->MergePreAggregatedSlice(b.start, b.end, b.t_first, b.t_last,
                                          b.count, b.partials);
    }
  };
  std::vector<WindowResult> drained;
  uint64_t results = 0;
  uint64_t my_barrier = 0;  // watermarks this worker has arrived at
  SpscQueue::Control c;
  while (true) {
    buf.Clear();
    if (q.PopTuples(&buf, batch) > 0) {
      local.AddColumns(buf.View());
      continue;
    }
    if (!q.PopControl(&c)) {
      std::this_thread::yield();
      continue;
    }
    switch (c.kind) {
      case SpscQueue::Control::Kind::kWatermark: {
        std::lock_guard<std::mutex> lk(merge_mu_);
        local.DrainCompletedUpTo(c.watermark, merge);
        Barrier& b =
            barriers_[static_cast<size_t>(my_barrier - barriers_popped_)];
        assert(b.wm == c.watermark);
        ++my_barrier;
        if (--b.remaining == 0) {
          // Queues are FIFO and watermarks broadcast in order, so the last
          // arrival always completes the FRONT barrier: every earlier one
          // had all workers arrive before they could reach this one.
          assert(my_barrier - 1 == barriers_popped_);
          drained.clear();
          if (shared_registry_ != nullptr) {
            shared_registry_->ProcessWatermark(b.wm);
            shared_registry_->TakeResultsInto(&drained);
          } else {
            shared_op_->ProcessWatermark(b.wm);
            shared_op_->TakeResultsInto(&drained);
          }
          results += drained.size();
          shared_results_.insert(shared_results_.end(),
                                 std::make_move_iterator(drained.begin()),
                                 std::make_move_iterator(drained.end()));
          barriers_.pop_front();
          ++barriers_popped_;
        }
        break;
      }
      case SpscQueue::Control::Kind::kSnapshot:
        // Unsupported in shared mode (SnapshotAtBarrier returns early
        // without broadcasting); acknowledge defensively so a producer can
        // never park forever.
        snap_remaining_.fetch_sub(1, std::memory_order_acq_rel);
        break;
      case SpscQueue::Control::Kind::kStop: {
        // Remaining buckets (past the last watermark) merge into the
        // shared store so no data is lost; the caller finalizes via
        // SharedOperator() after Finish().
        std::lock_guard<std::mutex> lk(merge_mu_);
        local.DrainAll(merge);
        total_results_.fetch_add(results);
        return;
      }
    }
  }
}

std::vector<WindowResult> ParallelExecutor::TakeSharedResults() {
  std::lock_guard<std::mutex> lk(merge_mu_);
  std::vector<WindowResult> out = std::move(shared_results_);
  shared_results_.clear();
  return out;
}

double ParallelExecutor::ApproxMaxQueueFraction() const {
  double frac = 0.0;
  for (const auto& q : queues_) frac = std::max(frac, q->ApproxOccupancy());
  return frac;
}

size_t ParallelExecutor::MemoryUsageBytes() const {
  size_t bytes = 0;
  for (const auto& op : operators_) bytes += op->MemoryUsageBytes();
  return bytes;
}

}  // namespace scotty
