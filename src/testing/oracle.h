#ifndef SCOTTY_TESTING_ORACLE_H_
#define SCOTTY_TESTING_ORACLE_H_

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "aggregates/aggregate_function.h"
#include "common/tuple.h"
#include "common/value.h"
#include "testing/harness.h"
#include "testing/query_spec.h"

namespace scotty {
namespace testing {

/// Reference (brute-force) aggregate of all tuples with start <= ts < end,
/// folded in (ts, seq) order — the semantic ground truth every operator must
/// match.
inline Value BruteForce(const AggregateFunction& fn, std::vector<Tuple> tuples,
                        Time start, Time end) {
  std::sort(tuples.begin(), tuples.end(), [](const Tuple& a, const Tuple& b) {
    if (a.ts != b.ts) return a.ts < b.ts;
    return a.seq < b.seq;
  });
  Partial acc;
  for (const Tuple& t : tuples) {
    if (t.is_punctuation) continue;
    if (t.ts >= start && t.ts < end) fn.Combine(acc, fn.Lift(t));
  }
  return fn.Lower(acc);
}

/// Brute-force aggregate over ranks [cs, ce) in event-time order.
inline Value BruteForceCount(const AggregateFunction& fn,
                             std::vector<Tuple> tuples, int64_t cs,
                             int64_t ce) {
  std::sort(tuples.begin(), tuples.end(), [](const Tuple& a, const Tuple& b) {
    if (a.ts != b.ts) return a.ts < b.ts;
    return a.seq < b.seq;
  });
  Partial acc;
  int64_t rank = 0;
  for (const Tuple& t : tuples) {
    if (t.is_punctuation) continue;
    if (rank >= cs && rank < ce) fn.Combine(acc, fn.Lift(t));
    ++rank;
  }
  return fn.Lower(acc);
}

/// Computes the full expected final result map for a query set over an
/// arrived stream, independently of every production operator: window
/// instances are enumerated directly from the window parameters and each
/// instance's aggregate is folded from the sorted tuple list. Semantics
/// mirrored here (and nowhere derived from the implementations under test):
///
///  - The watermark baseline is `first arrival's ts − 1`: windows ending
///    before the first processed tuple are never reported.
///  - Time windows [s, e) aggregate data tuples with s <= ts < e in
///    (ts, seq) order; instances with no tuples are reported with an empty
///    value.
///  - Sessions derive from the gap rule over the timestamps of ALL tuples
///    (punctuation markers extend sessions too — they are stream context),
///    while their aggregates fold data tuples only.
///  - Punctuation windows span consecutive distinct punctuation timestamps.
///  - Count windows are rank ranges in event-time (ts, seq) order over data
///    tuples; only windows fully below the final count watermark (= all
///    ranks, as the final time watermark passes every tuple) are reported.
///
/// `tuples` must carry the arrival seq numbers the operators saw
/// (RunToFinalResults assigns 0..n-1 in arrival order).
std::map<ResultKey, Value> OracleResults(
    const std::vector<WindowSpec>& windows,
    const std::vector<std::string>& aggs, const std::vector<Tuple>& tuples,
    Time final_wm);

}  // namespace testing
}  // namespace scotty

#endif  // SCOTTY_TESTING_ORACLE_H_
