#ifndef SCOTTY_CORE_QUERY_SET_H_
#define SCOTTY_CORE_QUERY_SET_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "aggregates/aggregate_function.h"
#include "core/workload.h"
#include "windows/window.h"

namespace scotty {

/// Operational counters exposed for tests, benchmarks, and the ablation
/// experiments (split/merge/recompute frequencies drive the performance
/// model of paper Section 5.2).
struct OperatorStats {
  uint64_t tuples_processed = 0;
  uint64_t out_of_order_tuples = 0;
  uint64_t late_tuples = 0;     // after watermark, within allowed lateness
  uint64_t dropped_tuples = 0;  // beyond allowed lateness
  uint64_t slice_merges = 0;
  uint64_t slice_splits = 0;
  uint64_t slice_recomputes = 0;
  uint64_t count_shifts = 0;  // tuple moves between count-measure slices
  uint64_t windows_emitted = 0;
  uint64_t window_updates_emitted = 0;
};

/// The mutable query context shared by the slicing components: the
/// registered windows and aggregations plus the derived workload decisions.
/// Re-characterized whenever a query is added or removed (the paper's
/// adaptivity: "our aggregator adapts when one adds or removes queries").
struct QuerySet {
  std::vector<WindowPtr> windows;  // window_id == index; removed -> nullptr
  std::vector<AggregateFunctionPtr> aggs;
  bool stream_in_order = false;
  bool force_store_tuples = false;  // experiment override
  /// In-order streams normally slice at window starts only (the Cutty
  /// minimality [10]); Pairs [28] additionally slices at window ends. Set
  /// for the Pairs baseline; irrelevant for out-of-order streams, which
  /// always slice at both (paper Section 5.3 Step 1).
  bool slice_at_window_ends = false;

  WorkloadCharacteristics chars;
  StorageDecision storage;
  RemovalStrategy removal = RemovalStrategy::kNotNeeded;
  bool splits_possible = false;

  void Recharacterize() {
    chars = Characterize(windows, aggs, stream_in_order);
    storage = DecideStorage(chars);
    removal = DecideRemoval(chars);
    splits_possible = SplitsPossible(chars);
  }

  bool StoreTuples() const {
    return force_store_tuples || storage.store_tuples;
  }

  bool AllCommutative() const { return chars.all_commutative; }
  bool AllInvertible() const { return chars.all_invertible; }

  /// True if `w` participates in the time lane (event-time / arbitrary
  /// advancing measures are processed identically, paper Section 4.3).
  static bool OnTimeLane(const WindowPtr& w) {
    return w && w->measure() != Measure::kCount;
  }

  static bool OnCountLane(const WindowPtr& w) {
    return w && w->measure() == Measure::kCount;
  }

  bool HasTimeLane() const {
    for (const WindowPtr& w : windows) {
      if (OnTimeLane(w)) return true;
    }
    return false;
  }

  bool HasCountLane() const {
    for (const WindowPtr& w : windows) {
      if (OnCountLane(w)) return true;
    }
    return false;
  }

  /// Whether any time-lane window still requires a slice boundary at `t`.
  /// The slice manager merges adjacent slices only when their shared
  /// boundary is required by no window ("slice edges match window edges and
  /// vice versa", paper Section 5.3 Step 2).
  bool AnyTimeWindowRequiresEdge(Time t) const {
    for (const WindowPtr& w : windows) {
      if (OnTimeLane(w) && w->IsWindowEdge(t)) return true;
    }
    return false;
  }

  /// Whether any time-lane window has an edge in the inclusive range
  /// [from, to]. Merging two slices separated by an empty gap must not
  /// swallow an edge that lies inside the gap.
  bool AnyTimeWindowEdgeInRange(Time from, Time to) const {
    if (from > to) return false;
    for (const WindowPtr& w : windows) {
      if (!OnTimeLane(w)) continue;
      if (w->GetNextEdge(from - 1) <= to) return true;
    }
    return false;
  }

  /// Smallest time-lane window edge at or after `t` (kMaxTime if none).
  Time FirstTimeWindowEdgeAtOrAfter(Time t) const {
    Time edge = kMaxTime;
    for (const WindowPtr& w : windows) {
      if (!OnTimeLane(w)) continue;
      edge = std::min(edge, w->GetNextEdge(t - 1));
    }
    return edge;
  }

  /// Largest time-lane window edge at or before `t` (kNoTime if none).
  Time LastTimeWindowEdgeAtOrBefore(Time t) const {
    Time edge = kNoTime;
    for (const WindowPtr& w : windows) {
      if (!OnTimeLane(w)) continue;
      const Time e = w->LastEdgeAtOrBefore(t);
      if (e != kNoTime && e > edge) edge = e;
    }
    return edge;
  }
};

}  // namespace scotty

#endif  // SCOTTY_CORE_QUERY_SET_H_
