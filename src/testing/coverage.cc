#include "testing/coverage.h"

// SanitizerCoverage hooks. This translation unit is compiled WITHOUT
// -fsanitize-coverage (it lives in the uninstrumented scotty_coverage
// target) so the hooks cannot recurse into themselves. The symbols are
// defined unconditionally: in uninstrumented builds nothing calls them, and
// in instrumented builds every basic block of the core library reports
// here. Clang emits trace-pc-guard callbacks; GCC emits trace-pc.

namespace scotty {
namespace testing {

CoverageMap::CoverageMap()
    : feature_seen_(kMapSize), edge_counts_(kMapSize), global_(kMapSize, 0) {}

CoverageMap& CoverageMap::Global() {
  static CoverageMap map;
  return map;
}

void CoverageMap::BeginRun() {
  for (uint32_t i = 0; i < kMapSize; ++i) {
    feature_seen_[i].store(0, std::memory_order_relaxed);
    edge_counts_[i].store(0, std::memory_order_relaxed);
  }
}

size_t CoverageMap::EndRun(std::vector<uint32_t>* run_features) {
  if (run_features != nullptr) run_features->clear();
  size_t discovered = 0;
  auto fold = [&](uint32_t idx) {
    if (run_features != nullptr) run_features->push_back(idx);
    if (global_[idx] == 0) {
      global_[idx] = 1;
      ++covered_count_;
      ++discovered;
    }
  };
  for (uint32_t i = 0; i < kMapSize; ++i) {
    if (feature_seen_[i].load(std::memory_order_relaxed) != 0) fold(i);
    const uint32_t count = edge_counts_[i].load(std::memory_order_relaxed);
    if (count != 0) {
      // Fold the bucketed count so revisiting an edge 100× vs once are
      // different features (reuses Index() for avalanche over the pair).
      const uint64_t id =
          static_cast<uint64_t>(FeatureDomain::kEdge) * 0x9E3779B97F4A7C15ULL +
          static_cast<uint64_t>(i) * 0xC2B2AE3D27D4EB4FULL +
          Log2Bucket(count) * 0x165667B19E3779F9ULL;
      fold(Index(id));
    }
  }
  return discovered;
}

void CoverageMap::Reset() {
  BeginRun();
  global_.assign(kMapSize, 0);
  covered_count_ = 0;
}

}  // namespace testing
}  // namespace scotty

extern "C" {

// Clang trace-pc-guard: every edge owns a uint32 slot; the init callback
// assigns each a distinct nonzero id once per module.
void __sanitizer_cov_trace_pc_guard_init(uint32_t* start, uint32_t* stop) {
  static uint32_t next_guard_id = 1;
  if (start == stop || *start != 0) return;  // already initialized
  for (uint32_t* g = start; g != stop; ++g) *g = next_guard_id++;
  scotty::testing::CoverageMap::Global().NoteEdgeInstrumentation();
}

void __sanitizer_cov_trace_pc_guard(uint32_t* guard) {
  scotty::testing::CoverageMap::Global().HitEdge(*guard);
}

// GCC trace-pc: no guard slots; the return address identifies the edge.
// PCs are only stable within one process, which is all the guided loop
// needs — the corpus persists inputs, never map indices.
void __sanitizer_cov_trace_pc() {
  auto& map = scotty::testing::CoverageMap::Global();
  map.NoteEdgeInstrumentation();
  const uintptr_t pc =
      reinterpret_cast<uintptr_t>(__builtin_return_address(0));
  map.HitEdge(static_cast<uint32_t>(pc >> 2));
}

}  // extern "C"
