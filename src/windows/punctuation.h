#ifndef SCOTTY_WINDOWS_PUNCTUATION_H_
#define SCOTTY_WINDOWS_PUNCTUATION_H_

#include <algorithm>
#include <string>
#include <vector>

#include "windows/window.h"

namespace scotty {

/// Punctuation-based window (forward context free, paper Section 4.4):
/// punctuation tuples embedded in the stream mark window edges; a window
/// spans [e_i, e_{i+1}) between consecutive punctuations. Once all tuples up
/// to timestamp t are processed, all edges up to t are known.
///
/// On in-order streams punctuations only ever cut the open slice (cheap). An
/// out-of-order punctuation introduces a *backward* edge: the slice spanning
/// it must be split and both halves recomputed from stored tuples — which is
/// why the decision tree (Fig. 4) stores tuples for FCF windows on
/// out-of-order streams.
class PunctuationWindow : public ContextAwareWindow {
 public:
  explicit PunctuationWindow(Measure measure = Measure::kEventTime)
      : measure_(measure) {}

  Measure measure() const override { return measure_; }
  ContextClass context_class() const override {
    return ContextClass::kForwardContextFree;
  }

  ContextModifications ProcessContext(const Tuple& t) override {
    ContextModifications mods;
    // Strictly greater: a punctuation at exactly max_ts_ is retroactive too.
    // A same-timestamp data tuple that arrived first may already have driven
    // a trigger at t.ts (in-order mode treats every tuple as a watermark),
    // so the window this edge closes must go through the changed-windows
    // path — its end is at or before the passed watermark and the regular
    // trigger scan will never revisit it.
    const bool advanced = max_ts_ == kNoTime || t.ts > max_ts_;
    max_ts_ = std::max(max_ts_, t.ts);
    if (!t.is_punctuation) return mods;

    auto it = std::lower_bound(edges_.begin(), edges_.end(), t.ts);
    if (it != edges_.end() && *it == t.ts) return mods;  // duplicate marker
    const bool has_prev = it != edges_.begin();
    const bool has_next = it != edges_.end();
    const Time prev_edge = has_prev ? *(it - 1) : kNoTime;
    const Time next_edge = has_next ? *it : kMaxTime;
    edges_.insert(it, t.ts);

    mods.split_edges.push_back(t.ts);
    if (!advanced) {
      // A retroactive edge: the newly revealed window ending here, and (when
      // the edge lands inside an already-known window) the right half, may
      // both need (re-)emission.
      if (has_prev) mods.changed_windows.push_back({prev_edge, t.ts});
      if (has_next) mods.changed_windows.push_back({t.ts, next_edge});
    }
    return mods;
  }

  Time GetNextEdge(Time t) const override {
    auto it = std::upper_bound(edges_.begin(), edges_.end(), t);
    return it != edges_.end() ? *it : kMaxTime;
  }

  Time LastEdgeAtOrBefore(Time t) const override {
    auto it = std::upper_bound(edges_.begin(), edges_.end(), t);
    return it != edges_.begin() ? *(it - 1) : kNoTime;
  }

  bool IsWindowEdge(Time t) const override {
    return std::binary_search(edges_.begin(), edges_.end(), t);
  }

  void TriggerWindows(WindowCallback& cb, Time prev_wm,
                      Time curr_wm) override {
    // Windows between consecutive punctuations whose end is in
    // (prev_wm, curr_wm].
    for (size_t i = 1; i < edges_.size(); ++i) {
      if (edges_[i] <= prev_wm) continue;
      if (edges_[i] > curr_wm) break;
      cb.OnWindow(edges_[i - 1], edges_[i]);
    }
  }

  Time EvictionSafePoint(Time wm) const override {
    // The window opened by the newest edge at or before wm is still
    // pending; its slices must be retained.
    const Time e = LastEdgeAtOrBefore(wm);
    return e == kNoTime ? kNoTime : std::min(e, wm);
  }

  void EvictState(Time t) override {
    // Keep the newest edge at or before t: it still opens a live window.
    auto it = std::upper_bound(edges_.begin(), edges_.end(), t);
    if (it == edges_.begin()) return;
    edges_.erase(edges_.begin(), it - 1);
  }

  size_t EdgeCount() const { return edges_.size(); }

  std::string Name() const override { return "punctuation"; }

  void SerializeState(state::Writer& w) const override {
    w.I64(max_ts_);
    w.U64(edges_.size());
    for (Time e : edges_) w.I64(e);
  }

  void DeserializeState(state::Reader& r) override {
    max_ts_ = r.I64();
    const uint64_t n = r.U64();
    if (n > r.remaining()) {
      r.Fail();
      return;
    }
    edges_.clear();
    edges_.reserve(static_cast<size_t>(n));
    for (uint64_t i = 0; i < n && r.ok(); ++i) edges_.push_back(r.I64());
  }

 private:
  Measure measure_;
  Time max_ts_ = kNoTime;
  std::vector<Time> edges_;  // sorted punctuation timestamps
};

}  // namespace scotty

#endif  // SCOTTY_WINDOWS_PUNCTUATION_H_
