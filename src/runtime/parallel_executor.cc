#include "runtime/parallel_executor.h"

#include <cassert>

namespace scotty {

SpscQueue::SpscQueue(size_t capacity_pow2)
    : ring_(capacity_pow2), mask_(capacity_pow2 - 1) {
  assert((capacity_pow2 & mask_) == 0 && "capacity must be a power of two");
}

void SpscQueue::Push(const Item& item) {
  const uint64_t tail = tail_.load(std::memory_order_relaxed);
  while (tail - head_.load(std::memory_order_acquire) >= ring_.size()) {
    std::this_thread::yield();  // backpressure
  }
  ring_[tail & mask_] = item;
  tail_.store(tail + 1, std::memory_order_release);
}

bool SpscQueue::Pop(Item* out) {
  const uint64_t head = head_.load(std::memory_order_relaxed);
  if (head == tail_.load(std::memory_order_acquire)) return false;
  *out = ring_[head & mask_];
  head_.store(head + 1, std::memory_order_release);
  return true;
}

ParallelExecutor::ParallelExecutor(
    size_t num_workers,
    std::function<std::unique_ptr<WindowOperator>()> factory)
    : factory_(std::move(factory)) {
  for (size_t i = 0; i < num_workers; ++i) {
    operators_.push_back(factory_());
    queues_.push_back(std::make_unique<SpscQueue>());
  }
  workers_.reserve(num_workers);
}

ParallelExecutor::~ParallelExecutor() {
  if (started_ && !finished_) Finish();
}

void ParallelExecutor::Start() {
  assert(!started_);
  started_ = true;
  for (size_t i = 0; i < operators_.size(); ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

void ParallelExecutor::Push(const Tuple& t) {
  // Key partitioning: consistent routing keeps all tuples of a key on one
  // worker, so per-key window semantics are preserved.
  const size_t w =
      static_cast<size_t>(static_cast<uint64_t>(t.key) * 0x9E3779B97F4A7C15ULL
                          >> 32) %
      queues_.size();
  SpscQueue::Item item;
  item.kind = SpscQueue::Item::Kind::kTuple;
  item.tuple = t;
  queues_[w]->Push(item);
}

void ParallelExecutor::PushWatermark(Time wm) {
  SpscQueue::Item item;
  item.kind = SpscQueue::Item::Kind::kWatermark;
  item.watermark = wm;
  for (auto& q : queues_) q->Push(item);
}

void ParallelExecutor::Finish() {
  assert(started_);
  SpscQueue::Item stop;
  stop.kind = SpscQueue::Item::Kind::kStop;
  for (auto& q : queues_) q->Push(stop);
  for (std::thread& t : workers_) t.join();
  finished_ = true;
}

void ParallelExecutor::WorkerLoop(size_t i) {
  SpscQueue& q = *queues_[i];
  WindowOperator& op = *operators_[i];
  SpscQueue::Item item;
  uint64_t results = 0;
  while (true) {
    if (!q.Pop(&item)) {
      std::this_thread::yield();
      continue;
    }
    switch (item.kind) {
      case SpscQueue::Item::Kind::kTuple:
        op.ProcessTuple(item.tuple);
        break;
      case SpscQueue::Item::Kind::kWatermark:
        op.ProcessWatermark(item.watermark);
        results += op.TakeResults().size();
        break;
      case SpscQueue::Item::Kind::kStop:
        results += op.TakeResults().size();
        total_results_.fetch_add(results);
        return;
    }
  }
}

size_t ParallelExecutor::MemoryUsageBytes() const {
  size_t bytes = 0;
  for (const auto& op : operators_) bytes += op->MemoryUsageBytes();
  return bytes;
}

}  // namespace scotty
