file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_measures.dir/bench_fig16_measures.cc.o"
  "CMakeFiles/bench_fig16_measures.dir/bench_fig16_measures.cc.o.d"
  "bench_fig16_measures"
  "bench_fig16_measures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_measures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
