#include "core/slice_manager.h"

#include <algorithm>
#include <cassert>

namespace scotty {

void SliceManager::AddInOrder(const Tuple& t) {
  Slice* cur = store_->Current();
  assert(cur != nullptr && "stream slicer must open a slice first");
  cur->AddTuple(t, store_->fns(), queries_->StoreTuples());
  store_->NoteTupleAdded();
  store_->OnSliceAggUpdated(store_->NumSlices() - 1);
}

size_t SliceManager::AddOutOfOrder(const Tuple& t) {
  size_t idx = store_->FindCovering(t.ts);
  if (idx == AggregateStore::kNpos) {
    // Uncovered stream region (between sessions, or before the first
    // slice): create a covering slice. Its bounds snap to the surrounding
    // window edges so slice edges keep matching window edges.
    Time start = kNoTime;
    Time end = kMaxTime;
    for (const WindowPtr& w : queries_->windows) {
      if (!QuerySet::OnTimeLane(w)) continue;
      const Time s = w->LastEdgeAtOrBefore(t.ts);
      if (s != kNoTime && s > start) start = s;
      const Time e = w->GetNextEdge(t.ts);
      if (e < end) end = e;
    }
    if (start == kNoTime) start = t.ts;
    const size_t before = store_->FindByStart(t.ts);  // kNpos -> front
    size_t pos = before == AggregateStore::kNpos ? 0 : before + 1;
    // Clamp to the neighbours so slices stay disjoint and ordered.
    if (pos > 0) start = std::max(start, store_->At(pos - 1).end());
    if (pos < store_->NumSlices()) {
      end = std::min(end, store_->At(pos).start());
    }
    assert(start <= t.ts && t.ts < end);
    store_->InsertAt(pos, start, end);
    idx = pos;
  }

  Slice& slice = store_->At(idx);
  if (queries_->AllCommutative()) {
    // One incremental aggregation step, exactly like an in-order tuple.
    slice.AddTuple(t, store_->fns(), queries_->StoreTuples());
  } else {
    // Non-commutative aggregation: retain the tuple and recompute the slice
    // aggregate in (ts, seq) order (paper Section 5.2, Update).
    assert(queries_->StoreTuples());
    slice.InsertTupleOnly(t);
    slice.RecomputeFromTuples(store_->fns());
    ++stats_->slice_recomputes;
  }
  store_->NoteTupleAdded();
  store_->OnSliceAggUpdated(idx);
  return idx;
}

void SliceManager::Apply(const ContextModifications& mods) {
  for (const auto& [a, b] : mods.merged_ranges) ApplyMerge(a, b);
  for (const auto& r : mods.resizes) ApplyResize(r);
  for (Time t : mods.split_edges) EnsureEdge(t);
}

void SliceManager::EnsureEdge(Time t) {
  const size_t idx = store_->FindCovering(t);
  if (idx == AggregateStore::kNpos) return;  // uncovered: nothing spans t
  Slice& s = store_->At(idx);
  if (s.start() == t) return;  // boundary already exists
  if (!s.tuples().empty() || s.empty() || s.t_last() < t || s.t_first() >= t ||
      s.CanSplitAtTrackedLast(t)) {
    store_->SplitAt(idx, t);
    ++stats_->slice_splits;
    if (!store_->At(idx).tuples().empty()) ++stats_->slice_recomputes;
    return;
  }
  // Tuples span the edge but were not retained: the workload
  // characterization promised this cannot happen (Fig. 4/5). Count it and
  // keep the aggregate on the left half so totals remain conserved.
  ++stats_->slice_splits;
  const Time end = s.end();
  s.set_end(t);
  store_->InsertAt(idx + 1, t, end);
}

void SliceManager::ApplyMerge(Time a, Time b) {
  // Merge adjacent slices whose shared boundary lies strictly inside (a, b)
  // and is no longer required by any window.
  size_t i = store_->FirstEndingAfter(a);
  while (i + 1 < store_->NumSlices()) {
    const Slice& left = store_->At(i);
    const Slice& right = store_->At(i + 1);
    if (right.start() >= b || left.start() >= b) break;
    const bool boundary_inside = left.end() > a && right.start() < b;
    if (!boundary_inside) {
      ++i;
      continue;
    }
    // No window may require a boundary anywhere between the slices' tuple
    // regions — including inside an empty gap between them.
    if (queries_->AnyTimeWindowEdgeInRange(left.end(), right.start())) {
      ++i;
      continue;
    }
    store_->MergeWithNext(i);
    ++stats_->slice_merges;
    // Do not advance: the merged slice may merge with the next one too.
  }
}

void SliceManager::ApplyResize(const ContextModifications::Resize& r) {
  // Locate the first slice of the resized extent.
  size_t i = store_->FindByStart(r.locate);
  if (i == AggregateStore::kNpos) i = 0;
  if (i >= store_->NumSlices()) return;

  // Extend the leading slice's start (session extended backward). The new
  // start must not cross another window's edge: tuples later landing in the
  // extended region would otherwise share a slice with tuples on the other
  // side of that edge.
  Slice& first = store_->At(i);
  if (r.new_start < first.start()) {
    Time start = r.new_start;
    // Include the old start itself: if any window requires an edge there
    // (or anywhere in between), the slice must not absorb the region below
    // it. The resized session's own start edge equals new_start and never
    // blocks.
    const Time blocking =
        queries_->LastTimeWindowEdgeAtOrBefore(first.start());
    if (blocking != kNoTime) start = std::max(start, blocking);
    if (i > 0) start = std::max(start, store_->At(i - 1).end());
    if (start < first.start()) first.set_start(start);
  }

  // Find the last slice belonging to the extent and extend its end
  // (session extended forward), again clamped to the first edge any other
  // window requires.
  size_t j = i;
  while (j + 1 < store_->NumSlices() &&
         store_->At(j + 1).start() < r.new_end) {
    ++j;
  }
  Slice& last = store_->At(j);
  if (r.new_end > last.end()) {
    Time end = std::min(
        r.new_end, queries_->FirstTimeWindowEdgeAtOrAfter(last.end()));
    if (j + 1 < store_->NumSlices()) {
      end = std::min(end, store_->At(j + 1).start());
    }
    if (end > last.end()) last.set_end(end);
  }
}

}  // namespace scotty
