#include "aggregates/registry.h"

#include <memory>

#include "aggregates/algebraic.h"
#include "aggregates/basic.h"
#include "aggregates/holistic.h"
#include "aggregates/ordered.h"
#include "aggregates/positional.h"

namespace scotty {

AggregateFunctionPtr MakeAggregation(const std::string& name) {
  if (name == "sum") return std::make_shared<SumAggregation>();
  if (name == "sum-no-invert") return std::make_shared<SumNoInvertAggregation>();
  if (name == "count") return std::make_shared<CountAggregation>();
  if (name == "min") return std::make_shared<MinAggregation>();
  if (name == "max") return std::make_shared<MaxAggregation>();
  if (name == "avg") return std::make_shared<AvgAggregation>();
  if (name == "geometric-mean")
    return std::make_shared<GeometricMeanAggregation>();
  if (name == "stddev") return std::make_shared<StdDevAggregation>();
  if (name == "min-count") return std::make_shared<MinCountAggregation>();
  if (name == "max-count") return std::make_shared<MaxCountAggregation>();
  if (name == "arg-min") return std::make_shared<ArgMinAggregation>();
  if (name == "arg-max") return std::make_shared<ArgMaxAggregation>();
  if (name == "m4") return std::make_shared<M4Aggregation>();
  if (name == "median") return std::make_shared<MedianAggregation>();
  if (name == "p90") return std::make_shared<Percentile90Aggregation>();
  if (name == "concat") return std::make_shared<ConcatAggregation>();
  if (name == "first") return std::make_shared<FirstAggregation>();
  if (name == "last") return std::make_shared<LastAggregation>();
  if (name == "count-distinct")
    return std::make_shared<CountDistinctAggregation>();
  return nullptr;
}

std::vector<std::string> BuiltinAggregationNames() {
  return {"sum",       "sum-no-invert", "count",     "avg",
          "geometric-mean", "stddev",   "min",       "max",
          "min-count", "max-count",     "arg-min",   "arg-max",
          "m4",        "median",        "p90",       "concat",
          "first",     "last",          "count-distinct"};
}

}  // namespace scotty
