#ifndef SCOTTY_COMMON_FASTMOD_H_
#define SCOTTY_COMMON_FASTMOD_H_

#include <cassert>
#include <cstdint>

namespace scotty {

/// Exact unsigned 64-bit modulus by a fixed divisor via a precomputed magic
/// multiplier (Granlund–Montgomery / libdivide-style). `FastMod(d).Mod(x)`
/// returns exactly `x % d` for every x, replacing a ~25-cycle hardware
/// 64-bit div with a mulhi + shift. The data generators take two modulos
/// per tuple (value range, key range) inside every benchmark's timed loop,
/// which made stream synthesis — not the operator — the throughput ceiling.
///
/// Divisors >= 2^63 fall back to the hardware div (never hit by the
/// generators; kept for totality).
class FastMod {
 public:
  explicit FastMod(uint64_t d) : d_(d) {
    assert(d > 0);
    if ((d & (d - 1)) == 0) {
      // Power of two (including d == 1): plain mask.
      kind_ = kPow2;
      mask_ = d - 1;
      return;
    }
    if (d >= (uint64_t{1} << 63)) {
      kind_ = kDiv;
      return;
    }
    // floor(log2(d)) for non-power-of-two d.
    unsigned sh = 63 - static_cast<unsigned>(__builtin_clzll(d));
    unsigned __int128 n = static_cast<unsigned __int128>(1) << (64 + sh);
    uint64_t q = static_cast<uint64_t>(n / d);
    uint64_t r = static_cast<uint64_t>(n % d);
    uint64_t e = d - r;
    if (e < (uint64_t{1} << sh)) {
      // Round-up magic fits in 64 bits: q_hat = mulhi(x, m) >> sh.
      kind_ = kMagic;
      magic_ = q + 1;
      shift_ = sh;
    } else {
      // 65-bit magic: m = floor(2^(64+sh+1) / d) + 1, with the standard
      // add-indicator fixup in Mod(). 64 + sh + 1 <= 127 because d < 2^63.
      unsigned __int128 n2 = static_cast<unsigned __int128>(1)
                             << (64 + sh + 1);
      kind_ = kMagicAdd;
      magic_ = static_cast<uint64_t>(n2 / d) + 1;
      shift_ = sh;
    }
  }

  uint64_t divisor() const { return d_; }

  uint64_t Mod(uint64_t x) const {
    switch (kind_) {
      case kPow2:
        return x & mask_;
      case kMagic: {
        uint64_t q = MulHi(x, magic_) >> shift_;
        return x - q * d_;
      }
      case kMagicAdd: {
        uint64_t t = MulHi(x, magic_);
        uint64_t q = (((x - t) >> 1) + t) >> shift_;
        return x - q * d_;
      }
      case kDiv:
        break;
    }
    return x % d_;
  }

 private:
  enum Kind : uint8_t { kPow2, kMagic, kMagicAdd, kDiv };

  static uint64_t MulHi(uint64_t a, uint64_t b) {
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(a) * b) >> 64);
  }

  uint64_t d_;
  uint64_t magic_ = 0;
  uint64_t mask_ = 0;
  unsigned shift_ = 0;
  Kind kind_ = kDiv;
};

}  // namespace scotty

#endif  // SCOTTY_COMMON_FASTMOD_H_
