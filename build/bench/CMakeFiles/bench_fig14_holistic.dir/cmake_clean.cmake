file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_holistic.dir/bench_fig14_holistic.cc.o"
  "CMakeFiles/bench_fig14_holistic.dir/bench_fig14_holistic.cc.o.d"
  "bench_fig14_holistic"
  "bench_fig14_holistic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_holistic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
