#ifndef SCOTTY_WINDOWS_SESSION_H_
#define SCOTTY_WINDOWS_SESSION_H_

#include <algorithm>
#include <string>
#include <vector>

#include "windows/window.h"

namespace scotty {

/// Session window with inactivity gap `gap`: a session covers a period of
/// activity and times out when no tuple arrives for `gap` time units. The
/// session containing tuples with timestamps {t_first..t_last} is the window
/// [t_first, t_last + gap).
///
/// Sessions are context aware, but they are the paper's special case
/// (Section 5.1 condition 2): out-of-order tuples can only *extend* sessions,
/// *merge* sessions, or *create* sessions — never split them — so session
/// processing never recomputes slice aggregates and never forces tuple
/// storage by itself.
class SessionWindow : public ContextAwareWindow {
 public:
  explicit SessionWindow(Time gap, Measure measure = Measure::kEventTime)
      : gap_(gap), measure_(measure) {}

  Time gap() const { return gap_; }
  Measure measure() const override { return measure_; }
  ContextClass context_class() const override {
    return ContextClass::kForwardContextAware;
  }
  bool IsSession() const override { return true; }

  ContextModifications ProcessContext(const Tuple& t) override {
    ContextModifications mods;
    const bool in_order = t.ts >= max_ts_;
    max_ts_ = std::max(max_ts_, t.ts);

    // Sessions the tuple's proto-window [t.ts, t.ts + gap) touches. The
    // invariant that consecutive sessions are >= gap apart means at most the
    // two neighbours of t.ts can be involved.
    const size_t next = FirstSessionStartingAfter(t.ts);
    const bool joins_prev =
        next > 0 && t.ts < sessions_[next - 1].last + gap_;
    const bool joins_next = next < sessions_.size() &&
                            t.ts + gap_ > sessions_[next].start;

    if (!joins_prev && !joins_next) {
      // A brand-new session. The slice manager creates a covering slice when
      // it stores the tuple; no structural change is needed here.
      sessions_.insert(sessions_.begin() + static_cast<ptrdiff_t>(next),
                       Session{t.ts, t.ts});
      if (!in_order) {
        mods.changed_windows.push_back({t.ts, t.ts + gap_});
      }
      return mods;
    }

    if (joins_prev && joins_next) {
      // The tuple bridges two sessions: merge them (paper: merge slices,
      // combine aggregates, no recomputation).
      Session& a = sessions_[next - 1];
      const Session b = sessions_[next];
      const Time new_start = std::min(a.start, t.ts);
      const Time new_last = b.last;  // t.ts < b.start <= b.last
      mods.merged_ranges.push_back({new_start, new_last + gap_});
      mods.resizes.push_back({a.start, new_start, new_last + gap_});
      mods.changed_windows.push_back({new_start, new_last + gap_});
      a.start = new_start;
      a.last = new_last;
      sessions_.erase(sessions_.begin() + static_cast<ptrdiff_t>(next));
      return mods;
    }

    Session& s = joins_prev ? sessions_[next - 1] : sessions_[next];
    if (t.ts >= s.start && t.ts <= s.last) {
      // Inside the session's span: only the aggregate changes.
      if (!in_order) mods.changed_windows.push_back({s.start, s.last + gap_});
      return mods;
    }
    const Time old_start = s.start;
    s.start = std::min(s.start, t.ts);
    s.last = std::max(s.last, t.ts);
    if (in_order) return mods;  // the stream slicer maintains the open slice
    // Out-of-order extension (backward start move or forward end move):
    // a slice-metadata update, never a recomputation.
    mods.resizes.push_back({old_start, s.start, s.last + gap_});
    mods.changed_windows.push_back({s.start, s.last + gap_});
    return mods;
  }

  Time GetNextEdge(Time t) const override {
    const size_t next = FirstSessionStartingAfter(t);
    if (next > 0 && t < sessions_[next - 1].last + gap_) {
      return sessions_[next - 1].last + gap_;  // current session's timeout
    }
    if (next < sessions_.size()) return sessions_[next].start;
    return kMaxTime;
  }

  Time LastEdgeAtOrBefore(Time t) const override {
    const size_t next = FirstSessionStartingAfter(t);
    if (next == 0) return t;  // a tuple here would start a new session at t
    const Session& s = sessions_[next - 1];
    if (t < s.last + gap_) return s.start;  // inside the session
    if (t == s.last + gap_) return t;       // exactly on the session end
    return t;  // past the session: a new session would start at t
  }

  bool IsWindowEdge(Time t) const override {
    const size_t next = FirstSessionStartingAfter(t);
    if (next == 0) return false;
    const Session& s = sessions_[next - 1];
    return s.start == t || s.last + gap_ == t;
  }

  void TriggerWindows(WindowCallback& cb, Time prev_wm,
                      Time curr_wm) override {
    for (const Session& s : sessions_) {
      const Time end = s.last + gap_;
      if (end > prev_wm && end <= curr_wm) cb.OnWindow(s.start, end);
      if (s.start > curr_wm) break;
    }
  }

  Time EvictionSafePoint(Time wm) const override {
    // Slices of sessions that have not timed out yet must be retained
    // however old their start is.
    for (const Session& s : sessions_) {
      if (s.last + gap_ > wm) return std::min(s.start, wm);
    }
    return wm;
  }

  void EvictState(Time t) override {
    size_t keep = 0;
    while (keep < sessions_.size() && sessions_[keep].last + gap_ <= t) ++keep;
    sessions_.erase(sessions_.begin(),
                    sessions_.begin() + static_cast<ptrdiff_t>(keep));
  }

  size_t ActiveSessionCount() const { return sessions_.size(); }

  std::string Name() const override {
    return "session(" + std::to_string(gap_) + ")";
  }

  void SerializeState(state::Writer& w) const override {
    w.I64(max_ts_);
    w.U64(sessions_.size());
    for (const Session& s : sessions_) {
      w.I64(s.start);
      w.I64(s.last);
    }
  }

  void DeserializeState(state::Reader& r) override {
    max_ts_ = r.I64();
    const uint64_t n = r.U64();
    if (n > r.remaining()) {
      r.Fail();
      return;
    }
    sessions_.clear();
    sessions_.reserve(static_cast<size_t>(n));
    for (uint64_t i = 0; i < n && r.ok(); ++i) {
      Session s;
      s.start = r.I64();
      s.last = r.I64();
      sessions_.push_back(s);
    }
  }

 private:
  struct Session {
    Time start;  // timestamp of the earliest tuple
    Time last;   // timestamp of the latest tuple; window end is last + gap
  };

  /// Index of the first session with start > t.
  size_t FirstSessionStartingAfter(Time t) const {
    auto it = std::upper_bound(
        sessions_.begin(), sessions_.end(), t,
        [](Time x, const Session& s) { return x < s.start; });
    return static_cast<size_t>(it - sessions_.begin());
  }

  Time gap_;
  Measure measure_;
  Time max_ts_ = kNoTime;
  std::vector<Session> sessions_;  // sorted by start, >= gap apart
};

}  // namespace scotty

#endif  // SCOTTY_WINDOWS_SESSION_H_
