// Overload & failure resilience (DESIGN.md §11): the BackpressureController
// three-level admission policy, ShedLedger per-window accounting, and the
// end-to-end acceptance scenario — sustained persist failures plus a stalled
// consumer must neither deadlock nor abort; the coordinator auto-falls back
// through the persistence ladder, data tuples shed under pressure are
// recorded with exact per-window accounting (delivered ∪ shed-marked windows
// partition the unfaulted run), and the ladder promotes back once the
// faults clear.

#include <atomic>
#include <filesystem>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "aggregates/registry.h"
#include "core/general_slicing_operator.h"
#include "runtime/checkpoint_health.h"
#include "runtime/overload.h"
#include "testing/fault_injector.h"
#include "testing/harness.h"
#include "tests/test_util.h"
#include "windows/sliding.h"
#include "windows/tumbling.h"

namespace scotty {
namespace {

namespace fs = std::filesystem;

using testing::MakeOverloadPlan;
using testing::OverloadPlan;
using testing::OverloadRunStats;
using testing::ResultKey;
using testing::RunOverloadedToFinalResults;
using testing::RunToFinalResults;
using testutil::T;

std::string TempDir(const std::string& leaf) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  const std::string unique =
      info ? leaf + "_" + info->test_suite_name() + "_" + info->name() : leaf;
  const fs::path dir = fs::path(::testing::TempDir()) / unique;
  fs::remove_all(dir);
  return dir.string();
}

TEST(BackpressureController, ThreeLevelPolicyWithHysteresis) {
  BackpressureOptions o;
  o.backpressure_fraction = 0.6;
  o.shed_fraction = 0.9;
  o.resume_fraction = 0.4;
  o.persist_queue_soft_limit = 4;
  BackpressureController c(o);
  const CheckpointHealthReport h;

  EXPECT_EQ(c.Decide(0.1, 0, h), Admission::kAccept);
  EXPECT_EQ(c.Decide(0.7, 0, h), Admission::kBackpressure);
  EXPECT_EQ(c.Decide(0.95, 0, h), Admission::kShed);
  EXPECT_TRUE(c.shedding());
  // Hysteresis: once shedding, the controller stays shedding until the
  // queue drains below the resume threshold — no accept/shed flapping.
  EXPECT_EQ(c.Decide(0.7, 0, h), Admission::kShed);
  EXPECT_EQ(c.Decide(0.5, 0, h), Admission::kShed);
  EXPECT_EQ(c.Decide(0.3, 0, h), Admission::kAccept);
  EXPECT_FALSE(c.shedding());
  // Persist-queue lag escalates to backpressure only — checkpoint trouble
  // slows admission but never drops data (the ladder handles persistence).
  EXPECT_EQ(c.Decide(0.1, 4, h), Admission::kBackpressure);
  EXPECT_EQ(c.Decide(0.1, 3, h), Admission::kAccept);
  EXPECT_GT(c.backpressure_decisions(), 0u);
  EXPECT_GT(c.shed_decisions(), 0u);
}

TEST(BackpressureController, ClampsThresholdsMonotone) {
  BackpressureOptions o;
  o.backpressure_fraction = 0.9;
  o.shed_fraction = 0.5;    // below backpressure: must be lifted
  o.resume_fraction = 0.95;  // above both: must be lowered
  const BackpressureController c(o);
  EXPECT_LE(c.options().resume_fraction, c.options().backpressure_fraction);
  EXPECT_LE(c.options().backpressure_fraction, c.options().shed_fraction);
}

TEST(ShedLedger, WindowOverlapAccounting) {
  ShedLedger l;
  EXPECT_TRUE(l.empty());
  EXPECT_FALSE(l.OverlapsWindow(0, 100));
  l.RecordShed(40);
  l.RecordShed(40);  // duplicates are distinct shed tuples
  l.RecordShed(99);
  EXPECT_FALSE(l.empty());
  EXPECT_EQ(l.total_shed(), 3u);
  EXPECT_TRUE(l.OverlapsWindow(0, 41));
  EXPECT_FALSE(l.OverlapsWindow(0, 40));   // window end is exclusive
  EXPECT_TRUE(l.OverlapsWindow(99, 100));  // window start is inclusive
  EXPECT_FALSE(l.OverlapsWindow(100, 200));
  EXPECT_EQ(l.CountInWindow(0, 100), 3u);
  EXPECT_EQ(l.CountInWindow(41, 99), 0u);
}

TEST(OverloadPlanDerivation, DeterministicWithStallAlwaysPresent) {
  const OverloadPlan a = MakeOverloadPlan(7, 1000);
  const OverloadPlan b = MakeOverloadPlan(7, 1000);
  EXPECT_EQ(a.stall_from, b.stall_from);
  EXPECT_EQ(a.stall_to, b.stall_to);
  EXPECT_EQ(a.stall_us, b.stall_us);
  EXPECT_EQ(a.slow_ms, b.slow_ms);
  EXPECT_EQ(a.fail_from, b.fail_from);
  EXPECT_GT(a.stall_us, 0u);  // pressure is the point: always a stall
  EXPECT_LT(a.stall_from, a.stall_to);
  EXPECT_LE(a.stall_to, 1000u);
}

// The ISSUE acceptance scenario: sustained persist failures plus a stalled
// consumer. The run must complete (no deadlock, no abort), fall back
// through the persistence ladder, account every shed tuple so that
// delivered ∪ shed-marked windows exactly partition the unfaulted run, and
// promote back to the configured mode once the faults clear.
TEST(OverloadRun, FallsBackShedsExactlyAndPromotesBack) {
  constexpr size_t kN = 2400;
  std::vector<Tuple> stream;
  stream.reserve(kN);
  for (size_t i = 0; i < kN; ++i) {
    stream.push_back(T(static_cast<Time>(i),
                       0.5 * static_cast<double>(i % 17) - 3.0));
  }
  auto factory = []() -> std::unique_ptr<WindowOperator> {
    GeneralSlicingOperator::Options o;
    o.allowed_lateness = 1000;
    auto op = std::make_unique<GeneralSlicingOperator>(o);
    op->AddAggregation(MakeAggregation("sum"));
    op->AddAggregation(MakeAggregation("min"));
    op->AddWindow(std::make_shared<TumblingWindow>(40));
    op->AddWindow(std::make_shared<SlidingWindow>(100, 25));
    return op;
  };
  const Time final_wm = static_cast<Time>(kN) + 1000;
  // The cadence must exceed the executor's 64-slot ring: every barrier is a
  // full drain (SnapshotAtBarrier quiesces the worker), so pressure — and
  // therefore shedding — can only build between barriers.
  const int wm_every = 100;
  const Time wm_lag = 5;

  std::map<ResultKey, Value> want;
  {
    auto op = factory();
    want = RunToFinalResults(*op, stream, final_wm, wm_every, wm_lag);
  }
  ASSERT_FALSE(want.empty());

  OverloadPlan plan;
  // The stall spans the whole stream: the per-tuple consumer delay paces
  // the producer (each barrier drains the ring), so barriers arrive slower
  // than persists complete. That makes the ladder walk reproducible — every
  // failing barrier is processed while the fault is live, and post-fault
  // probes reliably succeed instead of being shed at the persist queue.
  plan.stall_from = 100;
  plan.stall_to = kN;
  plan.stall_us = 300;
  plan.slow_from = 300;
  plan.slow_to = 600;
  plan.slow_ms = 2;
  plan.fail_from = 200;  // 7 consecutive failing barriers: walks the whole
  plan.fail_to = 900;    // ladder down to checkpointing-off
  std::map<ResultKey, Value> delivered;
  ShedLedger ledger;
  OverloadRunStats stats;
  std::string err;
  ASSERT_TRUE(RunOverloadedToFinalResults(
      factory, stream, final_wm, wm_every, wm_lag, plan,
      TempDir("overload_accept"), &delivered, &ledger, &err, &stats))
      << err;

  // Exact shed accounting: every data tuple either entered the pipeline or
  // is in the ledger, and the delivered/shed-marked windows partition the
  // unfaulted run.
  EXPECT_EQ(stats.admission.accepted + stats.admission.shed, kN);
  EXPECT_EQ(stats.admission.shed, ledger.total_shed());
  EXPECT_GT(stats.admission.shed, 0u);  // the stall forced real shedding
  for (const auto& [key, expected] : want) {
    const Time ws = std::get<2>(key);
    const Time we = std::get<3>(key);
    if (ledger.OverlapsWindow(ws, we)) continue;  // flagged approximate
    const auto it = delivered.find(key);
    ASSERT_NE(it, delivered.end())
        << "unshed window [" << ws << "," << we << ") missing";
    EXPECT_EQ(it->second, expected)
        << "unshed window [" << ws << "," << we << ") diverged";
  }
  for (const auto& [key, value] : delivered) {
    EXPECT_TRUE(want.count(key))
        << "window [" << std::get<2>(key) << "," << std::get<3>(key)
        << ") absent from the unfaulted run";
  }

  // The ladder moved down under the sustained failures and promoted back
  // once they cleared; terminal kFailed is never reached with auto
  // fallback on. How many rungs the climb completes before the stream ends
  // depends on persist timing (queue-full barriers are shed, not counted as
  // successes), so the assertions are on direction, not the final rung.
  EXPECT_GE(stats.health.mode_fallbacks, 1u);
  EXPECT_GE(stats.health.mode_promotions, 1u);
  EXPECT_LT(static_cast<int>(stats.health.mode),
            static_cast<int>(CheckpointPersistenceMode::kOff));
  EXPECT_FALSE(stats.health.alarm);
  EXPECT_EQ(stats.health.health, CheckpointHealth::kHealthy);
  EXPECT_GT(stats.barriers, 0u);
}

// Watermark safety: even a plan whose stall covers the whole stream (so the
// controller sheds aggressively throughout) must deliver every watermark —
// shedding affects data tuples only, and the run still terminates.
TEST(OverloadRun, ShedsDataButNeverWatermarksUnderFullStall) {
  constexpr size_t kN = 600;
  std::vector<Tuple> stream;
  stream.reserve(kN);
  for (size_t i = 0; i < kN; ++i) {
    stream.push_back(T(static_cast<Time>(i), static_cast<double>(i % 5)));
  }
  auto factory = []() -> std::unique_ptr<WindowOperator> {
    GeneralSlicingOperator::Options o;
    o.allowed_lateness = 1000;
    auto op = std::make_unique<GeneralSlicingOperator>(o);
    op->AddAggregation(MakeAggregation("count"));
    op->AddWindow(std::make_shared<TumblingWindow>(50));
    return op;
  };
  const Time final_wm = static_cast<Time>(kN) + 1000;

  // Cadence 200 >> ring capacity 64: between two barriers the crawling
  // consumer guarantees the ring fills and the shed latch engages.
  std::map<ResultKey, Value> want;
  {
    auto op = factory();
    want = RunToFinalResults(*op, stream, final_wm, 200, 5);
  }

  OverloadPlan plan;
  plan.stall_from = 0;
  plan.stall_to = kN;
  plan.stall_us = 2000;
  std::map<ResultKey, Value> delivered;
  ShedLedger ledger;
  OverloadRunStats stats;
  std::string err;
  ASSERT_TRUE(RunOverloadedToFinalResults(
      factory, stream, final_wm, 200, 5, plan, TempDir("overload_stall"),
      &delivered, &ledger, &err, &stats))
      << err;

  // The crawling consumer forces real shedding, yet the partition contract
  // still holds and nothing outside the unfaulted result set appears.
  EXPECT_GT(ledger.total_shed(), 0u);
  for (const auto& [key, expected] : want) {
    if (ledger.OverlapsWindow(std::get<2>(key), std::get<3>(key))) continue;
    const auto it = delivered.find(key);
    ASSERT_NE(it, delivered.end());
    EXPECT_EQ(it->second, expected);
  }
  for (const auto& [key, value] : delivered) {
    EXPECT_TRUE(want.count(key));
  }
}

}  // namespace
}  // namespace scotty
