#include "query/window_desc.h"

#include <cstdlib>
#include <memory>
#include <sstream>

#include "windows/frames.h"
#include "windows/multi_measure.h"
#include "windows/punctuation.h"
#include "windows/session.h"
#include "windows/sliding.h"
#include "windows/tumbling.h"

namespace scotty {

namespace {

std::vector<std::string> SplitOn(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      parts.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  parts.push_back(cur);
  return parts;
}

bool ParsePositive(const std::string& s, Time* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || v <= 0) return false;
  *out = static_cast<Time>(v);
  return true;
}

}  // namespace

std::string WindowDesc::ToString() const {
  const bool count = measure == Measure::kCount;
  std::ostringstream os;
  switch (kind) {
    case Kind::kTumbling:
      os << (count ? "ctumbling:" : "tumbling:") << length;
      break;
    case Kind::kSliding:
      os << (count ? "csliding:" : "sliding:") << length << ":" << slide;
      break;
    case Kind::kSession:
      os << "session:" << length;
      break;
    case Kind::kPunctuation:
      os << "punct";
      break;
    case Kind::kLastNEveryT:
      os << "lastn:" << length << ":" << slide;
      break;
    case Kind::kThresholdFrame:
      os << "frames:" << length;
      break;
  }
  return os.str();
}

WindowPtr WindowDesc::Instantiate() const {
  switch (kind) {
    case Kind::kTumbling:
      return std::make_shared<TumblingWindow>(length, measure);
    case Kind::kSliding:
      return std::make_shared<SlidingWindow>(length, slide, measure);
    case Kind::kSession:
      return std::make_shared<SessionWindow>(length);
    case Kind::kPunctuation:
      return std::make_shared<PunctuationWindow>();
    case Kind::kLastNEveryT:
      return std::make_shared<LastNEveryTWindow>(length, slide);
    case Kind::kThresholdFrame:
      return std::make_shared<ThresholdFrameWindow>(
          static_cast<double>(length));
  }
  return nullptr;
}

bool WindowDesc::Parse(const std::string& text, WindowDesc* out) {
  const std::vector<std::string> parts = SplitOn(text, ':');
  WindowDesc desc;
  const std::string& head = parts[0];
  if (head == "punct") {
    if (parts.size() != 1) return false;
    desc.kind = Kind::kPunctuation;
  } else if (head == "tumbling" || head == "ctumbling" || head == "session") {
    if (parts.size() != 2 || !ParsePositive(parts[1], &desc.length)) {
      return false;
    }
    desc.kind = head == "session" ? Kind::kSession : Kind::kTumbling;
    if (head == "ctumbling") desc.measure = Measure::kCount;
  } else if (head == "sliding" || head == "csliding") {
    if (parts.size() != 3 || !ParsePositive(parts[1], &desc.length) ||
        !ParsePositive(parts[2], &desc.slide)) {
      return false;
    }
    desc.kind = Kind::kSliding;
    if (head == "csliding") desc.measure = Measure::kCount;
  } else if (head == "lastn") {
    if (parts.size() != 3 || !ParsePositive(parts[1], &desc.length) ||
        !ParsePositive(parts[2], &desc.slide)) {
      return false;
    }
    desc.kind = Kind::kLastNEveryT;
  } else if (head == "frames") {
    if (parts.size() != 2 || !ParsePositive(parts[1], &desc.length)) {
      return false;
    }
    desc.kind = Kind::kThresholdFrame;
  } else {
    return false;
  }
  *out = desc;
  return true;
}

std::string WindowDescsToString(const std::vector<WindowDesc>& descs) {
  std::string out;
  for (size_t i = 0; i < descs.size(); ++i) {
    if (i > 0) out += ",";
    out += descs[i].ToString();
  }
  return out;
}

bool ParseWindowDescs(const std::string& text, std::vector<WindowDesc>* out) {
  out->clear();
  if (text.empty()) return false;
  for (const std::string& part : SplitOn(text, ',')) {
    WindowDesc desc;
    if (!WindowDesc::Parse(part, &desc)) return false;
    out->push_back(desc);
  }
  return true;
}

}  // namespace scotty
