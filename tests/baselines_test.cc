// Correctness tests for the baseline window operators (tuple buffer,
// aggregate tree, buckets, pairs, cutty): they must produce the same window
// aggregates as the semantics demand, whatever their internal strategy.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "aggregates/registry.h"
#include "baselines/aggregate_tree.h"
#include "baselines/buckets.h"
#include "baselines/pairs.h"
#include "baselines/tuple_buffer.h"
#include "common/memory.h"
#include "tests/test_util.h"
#include "windows/session.h"
#include "windows/sliding.h"
#include "windows/tumbling.h"

namespace scotty {
namespace {

using testutil::FinalResults;
using testutil::Num;
using testutil::RunStream;
using testutil::T;

// --------------------------- Tuple buffer ---------------------------

TEST(TupleBuffer, TumblingSumInOrder) {
  TupleBufferOperator op(/*stream_in_order=*/true);
  op.AddAggregation(MakeAggregation("sum"));
  op.AddWindow(std::make_shared<TumblingWindow>(10));
  auto fin = FinalResults(RunStream(
      op, {T(1, 1), T(5, 2), T(12, 4), T(25, 8)}, 30));
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 0, 10}]), 3.0);
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 10, 20}]), 4.0);
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 20, 30}]), 8.0);
}

TEST(TupleBuffer, OutOfOrderInsertKeepsBufferSorted) {
  TupleBufferOperator op(/*stream_in_order=*/false, /*lateness=*/100);
  op.AddAggregation(MakeAggregation("sum"));
  op.AddWindow(std::make_shared<TumblingWindow>(10));
  auto fin = FinalResults(RunStream(
      op, {T(1, 1), T(15, 2), T(5, 4), T(25, 8)}, 30));
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 0, 10}]), 5.0);
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 10, 20}]), 2.0);
}

TEST(TupleBuffer, LateTupleEmitsUpdate) {
  TupleBufferOperator op(false, /*lateness=*/100);
  op.AddAggregation(MakeAggregation("sum"));
  op.AddWindow(std::make_shared<TumblingWindow>(10));
  op.ProcessTuple(T(1, 1, 0));
  op.ProcessTuple(T(15, 2, 1));
  op.ProcessWatermark(12);
  op.TakeResults();
  op.ProcessTuple(T(5, 4, 2));
  auto updates = op.TakeResults();
  ASSERT_EQ(updates.size(), 1u);
  EXPECT_TRUE(updates[0].is_update);
  EXPECT_DOUBLE_EQ(Num(updates[0].value), 5.0);
}

TEST(TupleBuffer, SessionWindows) {
  TupleBufferOperator op(true);
  op.AddAggregation(MakeAggregation("sum"));
  op.AddWindow(std::make_shared<SessionWindow>(5));
  auto fin = FinalResults(RunStream(
      op, {T(1, 1), T(3, 2), T(20, 4)}, 40));
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 1, 8}]), 3.0);
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 20, 25}]), 4.0);
}

TEST(TupleBuffer, CountWindows) {
  TupleBufferOperator op(true);
  op.AddAggregation(MakeAggregation("sum"));
  op.AddWindow(std::make_shared<TumblingWindow>(2, Measure::kCount));
  auto fin = FinalResults(RunStream(
      op, {T(10, 1), T(20, 2), T(30, 4), T(40, 8)}, 40));
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 0, 2}]), 3.0);
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 2, 4}]), 12.0);
}

TEST(TupleBuffer, MemoryProportionalToBufferedTuples) {
  TupleBufferOperator op(false, /*lateness=*/1000000);
  op.AddAggregation(MakeAggregation("sum"));
  op.AddWindow(std::make_shared<TumblingWindow>(1000000));
  for (int i = 0; i < 1000; ++i) op.ProcessTuple(T(i, 1, i));
  EXPECT_EQ(op.BufferedTuples(), 1000u);
  EXPECT_EQ(op.MemoryUsageBytes(), 1000 * MemoryModel::kTupleBytes);
}

// --------------------------- Aggregate tree ---------------------------

TEST(AggregateTree, TumblingSumInOrder) {
  AggregateTreeOperator op(true);
  op.AddAggregation(MakeAggregation("sum"));
  op.AddWindow(std::make_shared<TumblingWindow>(10));
  auto fin = FinalResults(RunStream(
      op, {T(1, 1), T(5, 2), T(12, 4), T(25, 8)}, 30));
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 0, 10}]), 3.0);
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 10, 20}]), 4.0);
}

TEST(AggregateTree, SharesPartialsAcrossOverlappingWindows) {
  AggregateTreeOperator op(true);
  op.AddAggregation(MakeAggregation("sum"));
  op.AddWindow(std::make_shared<SlidingWindow>(20, 10));
  std::vector<Tuple> tuples;
  for (int i = 0; i < 40; ++i) tuples.push_back(T(i, 1.0));
  auto fin = FinalResults(RunStream(op, tuples, 40));
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 0, 20}]), 20.0);
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 10, 30}]), 20.0);
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 20, 40}]), 20.0);
}

TEST(AggregateTree, OutOfOrderLeafInsert) {
  AggregateTreeOperator op(false, /*lateness=*/100);
  op.AddAggregation(MakeAggregation("sum"));
  op.AddWindow(std::make_shared<TumblingWindow>(10));
  auto fin = FinalResults(RunStream(
      op, {T(1, 1), T(15, 2), T(5, 4), T(25, 8)}, 30));
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 0, 10}]), 5.0);
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 10, 20}]), 2.0);
}

TEST(AggregateTree, MedianViaOrderedRangeQueries) {
  AggregateTreeOperator op(true);
  op.AddAggregation(MakeAggregation("median"));
  op.AddWindow(std::make_shared<TumblingWindow>(10));
  auto fin = FinalResults(RunStream(
      op, {T(1, 9), T(3, 1), T(7, 5), T(15, 2)}, 20));
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 0, 10}]), 5.0);
}

TEST(AggregateTree, EvictionSlidesLeaves) {
  AggregateTreeOperator op(true);
  op.AddAggregation(MakeAggregation("sum"));
  op.AddWindow(std::make_shared<TumblingWindow>(10));
  for (int i = 0; i < 1000; ++i) op.ProcessTuple(T(i, 1, i));
  EXPECT_LT(op.LeafCount(), 100u);  // horizon = one window length
}

// --------------------------- Buckets ---------------------------

TEST(Buckets, TumblingAssignsSingleBucket) {
  BucketsOperator op(true);
  op.AddAggregation(MakeAggregation("sum"));
  op.AddWindow(std::make_shared<TumblingWindow>(10));
  auto fin = FinalResults(RunStream(
      op, {T(1, 1), T(5, 2), T(12, 4), T(25, 8)}, 30));
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 0, 10}]), 3.0);
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 10, 20}]), 4.0);
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 20, 30}]), 8.0);
}

TEST(Buckets, SlidingReplicatesAcrossOverlappingBuckets) {
  BucketsOperator op(true);
  op.AddAggregation(MakeAggregation("sum"));
  op.AddWindow(std::make_shared<SlidingWindow>(20, 10));
  std::vector<Tuple> tuples;
  for (int i = 0; i < 40; ++i) tuples.push_back(T(i, 1.0));
  auto fin = FinalResults(RunStream(op, tuples, 40));
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 0, 20}]), 20.0);
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 10, 30}]), 20.0);
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 20, 40}]), 20.0);
}

TEST(Buckets, OutOfOrderTupleJoinsItsBuckets) {
  BucketsOperator op(false, /*lateness=*/100);
  op.AddAggregation(MakeAggregation("sum"));
  op.AddWindow(std::make_shared<TumblingWindow>(10));
  auto fin = FinalResults(RunStream(
      op, {T(1, 1), T(15, 2), T(5, 4)}, 20));
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 0, 10}]), 5.0);
}

TEST(Buckets, SessionBucketsMerge) {
  BucketsOperator op(false, /*lateness=*/100);
  op.AddAggregation(MakeAggregation("sum"));
  op.AddWindow(std::make_shared<SessionWindow>(5));
  auto fin = FinalResults(RunStream(
      op, {T(10, 1), T(18, 2), T(30, 0), T(14, 4)}, 50));
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 10, 23}]), 7.0);
}

TEST(Buckets, HolisticAggregationUsesTupleBuckets) {
  BucketsOperator op(true);
  op.AddAggregation(MakeAggregation("median"));
  op.AddWindow(std::make_shared<TumblingWindow>(10));
  auto fin = FinalResults(RunStream(
      op, {T(1, 9), T(3, 1), T(7, 5), T(15, 0)}, 20));
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 0, 10}]), 5.0);
}

TEST(Buckets, CountWindowsOnOutOfOrderStream) {
  BucketsOperator op(false, /*lateness=*/1000);
  op.AddAggregation(MakeAggregation("sum"));
  op.AddWindow(std::make_shared<TumblingWindow>(2, Measure::kCount));
  // Event-time order: 10, 15, 20, 30 -> ranks [0,2) = 1+4, [2,4) = 2+8.
  auto fin = FinalResults(RunStream(
      op, {T(10, 1), T(20, 2), T(30, 8), T(15, 4)}, 30));
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 0, 2}]), 5.0);
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 2, 4}]), 10.0);
}

TEST(Buckets, MemoryGrowsWithOverlap) {
  auto run = [](Time slide) {
    BucketsOperator op(false, /*lateness=*/100000);
    op.AddAggregation(MakeAggregation("sum"));
    op.AddWindow(std::make_shared<SlidingWindow>(1000, slide));
    for (int i = 0; i < 2000; ++i) op.ProcessTuple(T(i, 1, i));
    return op.MemoryUsageBytes();
  };
  // 10x more overlapping buckets -> clearly more memory.
  EXPECT_GT(run(100), 2 * run(1000));
}

TEST(Buckets, NanosecondPathPrecomputesAggregates) {
  BucketsOperator op(true);
  op.AddAggregation(MakeAggregation("sum"));
  op.AddWindow(std::make_shared<TumblingWindow>(10));
  for (int i = 0; i < 100; ++i) op.ProcessTuple(T(i, 1, i));
  EXPECT_GT(op.TotalBuckets(), 0u);
}

// --------------------------- Pairs & Cutty ---------------------------

TEST(PairsCutty, BothMatchTumblingSemantics) {
  for (int variant = 0; variant < 2; ++variant) {
    std::unique_ptr<GeneralSlicingOperator> op;
    if (variant == 0) {
      op = std::make_unique<PairsOperator>();
    } else {
      op = std::make_unique<CuttyOperator>();
    }
    op->AddAggregation(MakeAggregation("sum"));
    op->AddWindow(std::make_shared<TumblingWindow>(10));
    auto fin = FinalResults(RunStream(
        *op, {T(1, 1), T(5, 2), T(12, 4), T(25, 8)}, 30));
    EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 0, 10}]), 3.0) << variant;
    EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 10, 20}]), 4.0) << variant;
  }
}

TEST(PairsCutty, SliceSetsCoincideUnderCorrectSlicing) {
  // Classic Pairs cuts every slide period twice (l mod ls and its
  // complement); Cutty cuts at window begins. With aligned windows the two
  // edge sets coincide, and for misaligned windows correctness forces the
  // begin-only strategy to cut at ends too — so the slice counts match.
  PairsOperator pairs;
  CuttyOperator cutty;
  for (GeneralSlicingOperator* op :
       std::initializer_list<GeneralSlicingOperator*>{&pairs, &cutty}) {
    op->AddAggregation(MakeAggregation("sum"));
    op->AddWindow(std::make_shared<SlidingWindow>(12, 5));
  }
  std::vector<Tuple> tuples;
  for (int i = 0; i < 50; ++i) tuples.push_back(T(i, 1.0));
  RunStream(pairs, tuples, 0);
  RunStream(cutty, tuples, 0);
  EXPECT_EQ(pairs.time_store()->SlicesCreated(),
            cutty.time_store()->SlicesCreated());
}

TEST(PairsCutty, SlidingResultsAgreeWithEachOther) {
  PairsOperator pairs;
  CuttyOperator cutty;
  for (GeneralSlicingOperator* op :
       std::initializer_list<GeneralSlicingOperator*>{&pairs, &cutty}) {
    op->AddAggregation(MakeAggregation("sum"));
    op->AddWindow(std::make_shared<SlidingWindow>(15, 5));
  }
  std::vector<Tuple> tuples;
  for (int i = 0; i < 60; ++i) {
    tuples.push_back(T(i, static_cast<double>(i % 7)));
  }
  auto a = FinalResults(RunStream(pairs, tuples, 60));
  auto b = FinalResults(RunStream(cutty, tuples, 60));
  EXPECT_EQ(a, b);
}

TEST(PairsCutty, NamesIdentifyTechniques) {
  EXPECT_EQ(PairsOperator().Name(), "pairs");
  EXPECT_EQ(CuttyOperator().Name(), "cutty");
}

}  // namespace
}  // namespace scotty
