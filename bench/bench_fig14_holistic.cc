// Figure 14: Throughput of holistic aggregation (median) across techniques
// and datasets.
//
// Setup (paper Section 6.3.2): 20 concurrent windows, 20% out-of-order
// tuples. Expected shape: slicing beats buckets and tuple buffer by
// avoiding redundant per-window computation (sorted runs + RLE inside
// slices); the machine dataset (37 distinct values) is faster than the
// football dataset (84 232 distinct values) because run-length encoding
// compresses better.

#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace scotty {
namespace bench {
namespace {

void Run() {
  PrintHeader("fig14", "holistic (median) throughput across techniques");
  const std::vector<Technique> techniques = {Technique::kLazySlicing,
                                             Technique::kBuckets,
                                             Technique::kTupleBuffer};
  for (const char* dataset : {"football", "machine"}) {
    for (Technique tech : techniques) {
      SensorStream inner(dataset == std::string("football")
                             ? SensorStream::Football()
                             : SensorStream::Machine());
      OutOfOrderInjector::Options ooo;
      ooo.fraction = 0.2;
      ooo.max_delay = 2000;
      OutOfOrderInjector src(&inner, ooo);
      auto op = MakeTechnique(tech, false, 2000, DashboardTumblingWindows(20),
                              {"median"});
      const ThroughputResult r =
          MeasureThroughput(*op, src, 1'000'000, 0.8, 1024, 2000);
      PrintRow("fig14", std::string(TechniqueName(tech)) + "/" + dataset,
               dataset, r.TuplesPerSecond(), "tuples/s");
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace scotty

int main() {
  scotty::bench::Run();
  return 0;
}
