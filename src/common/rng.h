#ifndef SCOTTY_COMMON_RNG_H_
#define SCOTTY_COMMON_RNG_H_

#include <cstdint>

namespace scotty {

/// Small, fast, deterministic PRNG (xorshift128+). Used by the data
/// generators and the out-of-order injector so experiments are exactly
/// reproducible across runs; std::mt19937_64 would work too but is slower
/// and its streams are harder to seed splittably.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    // SplitMix64 seeding to avoid correlated low-entropy states.
    s0_ = SplitMix(&seed);
    s1_ = SplitMix(&seed);
    if (s0_ == 0 && s1_ == 0) s1_ = 1;
  }

  uint64_t NextU64() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound) { return NextU64() % bound; }

  /// Uniform in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    NextBounded(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

 private:
  static uint64_t SplitMix(uint64_t* state) {
    uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace scotty

#endif  // SCOTTY_COMMON_RNG_H_
