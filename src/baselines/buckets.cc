#include "baselines/buckets.h"

#include <algorithm>
#include <cassert>

#include "common/memory.h"
#include "windows/session.h"
#include "windows/sliding.h"
#include "windows/tumbling.h"

namespace scotty {

namespace {

class Collector : public WindowCallback {
 public:
  void OnWindow(Time start, Time end) override {
    windows.push_back({start, end});
  }
  std::vector<std::pair<Time, Time>> windows;
};

bool TupleLess(const Tuple& a, const Tuple& b) {
  if (a.ts != b.ts) return a.ts < b.ts;
  return a.seq < b.seq;
}

}  // namespace

BucketsOperator::BucketsOperator(bool stream_in_order, Time allowed_lateness,
                                 BucketKind kind)
    : stream_in_order_(stream_in_order),
      allowed_lateness_(allowed_lateness),
      kind_(kind) {}

int BucketsOperator::AddAggregation(AggregateFunctionPtr fn) {
  if (!fn->IsCommutative()) any_non_commutative_ = true;
  if (fn->Class() == AggClass::kHolistic) any_holistic_ = true;
  aggs_.push_back(std::move(fn));
  return static_cast<int>(aggs_.size()) - 1;
}

int BucketsOperator::AddWindow(WindowPtr w) {
  const bool supported = dynamic_cast<TumblingWindow*>(w.get()) != nullptr ||
                         dynamic_cast<SlidingWindow*>(w.get()) != nullptr ||
                         dynamic_cast<SessionWindow*>(w.get()) != nullptr;
  assert(supported && "buckets support tumbling/sliding/session windows");
  (void)supported;
  if (w->measure() == Measure::kCount) has_count_windows_ = true;
  windows_.push_back(std::move(w));
  buckets_.emplace_back();
  return static_cast<int>(windows_.size()) - 1;
}

bool BucketsOperator::StoreTuples() const {
  switch (kind_) {
    case BucketKind::kAggregate:
      return false;
    case BucketKind::kTuple:
      return true;
    case BucketKind::kAuto:
      return any_non_commutative_ || any_holistic_ ||
             (has_count_windows_ && !stream_in_order_);
  }
  return false;
}

void BucketsOperator::AssignTuple(size_t w, const Tuple& t, Time key_start,
                                  Time end) {
  Bucket& b = buckets_[w][key_start];
  if (b.count == 0 && b.aggs.empty()) {
    b.start = key_start;
    b.aggs.assign(aggs_.size(), Partial{});
  }
  b.end = end;
  for (size_t a = 0; a < aggs_.size(); ++a) {
    aggs_[a]->Combine(b.aggs[a], aggs_[a]->Lift(t));
  }
  if (StoreTuples()) {
    auto it = std::upper_bound(b.tuples.begin(), b.tuples.end(), t, TupleLess);
    b.tuples.insert(it, t);
    if (any_non_commutative_) {
      // Retain aggregation order: recompute from the sorted tuples.
      for (size_t a = 0; a < aggs_.size(); ++a) {
        Partial acc;
        for (const Tuple& x : b.tuples) {
          aggs_[a]->Combine(acc, aggs_[a]->Lift(x));
        }
        b.aggs[a] = std::move(acc);
      }
    }
  }
  ++b.count;
}

void BucketsOperator::AssignToTimeWindows(size_t w, const Tuple& t) {
  if (auto* tw = dynamic_cast<TumblingWindow*>(windows_[w].get())) {
    const Time start = (t.ts / tw->length()) * tw->length();
    AssignTuple(w, t, start, start + tw->length());
    return;
  }
  if (auto* sw = dynamic_cast<SlidingWindow*>(windows_[w].get())) {
    // All window instances [k*ls, k*ls + l) containing t.ts: one bucket
    // update per overlapping window — the cost the paper highlights.
    const Time l = sw->length();
    const Time ls = sw->slide();
    const Time k_max = t.ts / ls;
    Time k_min = (t.ts - l) / ls + 1;
    if (t.ts - l < 0) k_min = 0;
    for (Time k = k_min; k <= k_max; ++k) {
      AssignTuple(w, t, k * ls, k * ls + l);
    }
    return;
  }
  if (dynamic_cast<SessionWindow*>(windows_[w].get()) != nullptr) {
    // After ProcessContext, the session window reports the session
    // containing t through its edge interface.
    const Time start = windows_[w]->LastEdgeAtOrBefore(t.ts);
    const Time end = windows_[w]->GetNextEdge(t.ts);
    AssignTuple(w, t, start, end);
  }
}

void BucketsOperator::AssignToCountBuckets(size_t w, int64_t rank,
                                           const Tuple& t) {
  if (auto* tw = dynamic_cast<TumblingWindow*>(windows_[w].get())) {
    const Time start = (rank / tw->length()) * tw->length();
    AssignTuple(w, t, start, start + tw->length());
    return;
  }
  if (auto* sw = dynamic_cast<SlidingWindow*>(windows_[w].get())) {
    const Time l = sw->length();
    const Time ls = sw->slide();
    const Time k_max = rank / ls;
    Time k_min = (rank - l) / ls + 1;
    if (rank - l < 0) k_min = 0;
    for (Time k = k_min; k <= k_max; ++k) {
      AssignTuple(w, t, k * ls, k * ls + l);
    }
  }
}

void BucketsOperator::RebuildCountBucketsFrom(size_t w, int64_t rank) {
  // An out-of-order tuple shifted the rank of all later tuples: rebuild
  // every bucket covering ranks >= rank from the global sorted buffer.
  auto& map = buckets_[w];
  Time min_start = rank;
  for (auto it = map.begin(); it != map.end();) {
    if (it->second.end <= rank) {
      ++it;
      continue;
    }
    min_start = std::min(min_start, it->second.start);
    it = map.erase(it);
  }
  const int64_t total = evicted_count_ + static_cast<int64_t>(count_buffer_.size());
  for (int64_t r = std::max<int64_t>(min_start, evicted_count_); r < total;
       ++r) {
    const Tuple& t = count_buffer_[static_cast<size_t>(r - evicted_count_)];
    // Re-assign only to instances not fully before `rank`.
    if (auto* tw = dynamic_cast<TumblingWindow*>(windows_[w].get())) {
      const Time start = (r / tw->length()) * tw->length();
      if (start + tw->length() > rank) {
        AssignTuple(w, t, start, start + tw->length());
      }
    } else if (auto* sw = dynamic_cast<SlidingWindow*>(windows_[w].get())) {
      const Time l = sw->length();
      const Time ls = sw->slide();
      const Time k_max = r / ls;
      Time k_min = (r - l) / ls + 1;
      if (r - l < 0) k_min = 0;
      for (Time k = k_min; k <= k_max; ++k) {
        if (k * ls + l > rank) AssignTuple(w, t, k * ls, k * ls + l);
      }
    }
  }
}

void BucketsOperator::ApplySessionMods(size_t w,
                                       const ContextModifications& mods) {
  auto& map = buckets_[w];
  for (const auto& [a, b] : mods.merged_ranges) {
    // Merge all buckets whose start lies in [a, b) into one. A session
    // consisting only of punctuation markers has no bucket at all, so the
    // range may be empty — never touch a bucket outside it.
    auto lo = map.lower_bound(a);
    if (lo == map.end() || lo->first >= b) continue;
    Bucket merged = lo->second;
    auto it = std::next(lo);
    while (it != map.end() && it->first < b) {
      for (size_t ag = 0; ag < aggs_.size(); ++ag) {
        aggs_[ag]->Combine(merged.aggs[ag], it->second.aggs[ag]);
      }
      std::vector<Tuple> ts;
      std::merge(merged.tuples.begin(), merged.tuples.end(),
                 it->second.tuples.begin(), it->second.tuples.end(),
                 std::back_inserter(ts), TupleLess);
      merged.tuples = std::move(ts);
      merged.count += it->second.count;
      merged.end = std::max(merged.end, it->second.end);
      it = map.erase(it);
    }
    merged.end = std::max(merged.end, b);
    map.erase(lo);
    merged.start = std::min(merged.start, a);
    map[merged.start] = std::move(merged);
  }
  for (const auto& r : mods.resizes) {
    auto it = map.find(r.locate);
    if (it == map.end()) {
      // The session may have been re-keyed by an earlier merge; any bucket
      // inside the resized extent is it (sessions are >= gap apart). If the
      // session holds no data tuples yet (punctuation-only), there is no
      // bucket — resizing must not capture a later session's bucket.
      it = map.lower_bound(r.new_start);
      if (it == map.end() || it->first >= r.new_end) continue;
    }
    Bucket b = it->second;
    map.erase(it);
    b.start = std::min(b.start, r.new_start);
    b.end = std::max(b.end, r.new_end);
    map[b.start] = std::move(b);
  }
}

void BucketsOperator::ProcessTuple(const Tuple& t) {
  const bool in_order = max_ts_ == kNoTime || t.ts >= max_ts_;
  const bool late = last_wm_ != kNoTime && t.ts <= last_wm_;
  if (late && t.ts < last_wm_ - allowed_lateness_) return;
  if (last_wm_ == kNoTime) {
    last_wm_ = t.ts - 1;
    wm_floor_ = last_wm_;
  }

  std::vector<std::pair<size_t, std::vector<std::pair<Time, Time>>>> changed;
  for (size_t w = 0; w < windows_.size(); ++w) {
    if (auto* caw = dynamic_cast<ContextAwareWindow*>(windows_[w].get())) {
      ContextModifications mods = caw->ProcessContext(t);
      ApplySessionMods(w, mods);
      if (!mods.changed_windows.empty()) {
        changed.emplace_back(w, std::move(mods.changed_windows));
      }
    }
  }

  int64_t rank = -1;
  if (!t.is_punctuation) {
    if (has_count_windows_) {
      auto it =
          std::upper_bound(count_buffer_.begin(), count_buffer_.end(), t,
                           TupleLess);
      rank = evicted_count_ + (it - count_buffer_.begin());
      count_buffer_.insert(it, t);
    }
    for (size_t w = 0; w < windows_.size(); ++w) {
      if (windows_[w]->measure() == Measure::kCount) {
        if (in_order) {
          AssignToCountBuckets(w, rank, t);
        } else {
          RebuildCountBucketsFrom(w, rank);
        }
      } else {
        AssignToTimeWindows(w, t);
      }
    }
  }
  if (in_order) max_ts_ = t.ts;

  // Allowed-lateness updates: buckets the late tuple landed in that were
  // already emitted. Windows ending at or before the watermark floor (the
  // first observed point in time) were never emitted and must not resurface.
  for (auto& [w, wins] : changed) {
    for (const auto& [s, e] : wins) {
      if (e <= last_wm_ && e > wm_floor_) EmitBucket(w, s, /*update=*/true, e);
    }
  }
  if (late && !t.is_punctuation) {
    for (size_t w = 0; w < windows_.size(); ++w) {
      Collector c;
      if (windows_[w]->measure() == Measure::kCount) {
        windows_[w]->TriggerWindows(c, rank, last_cwm_);
        for (const auto& [cs, ce] : c.windows) {
          EmitBucket(w, cs, true, ce);
        }
      } else if (dynamic_cast<SessionWindow*>(windows_[w].get()) == nullptr) {
        windows_[w]->TriggerWindows(c, std::max(t.ts, wm_floor_), last_wm_);
        for (const auto& [s, e] : c.windows) {
          if (s <= t.ts) EmitBucket(w, s, true, e);
        }
      }
    }
  }

  if (stream_in_order_) TriggerAll(t.ts);
}

void BucketsOperator::ProcessWatermark(Time wm) {
  if (last_wm_ == kNoTime) {
    last_wm_ = max_ts_ == kNoTime ? wm : std::min(wm, max_ts_ - 1);
    wm_floor_ = last_wm_;
  }
  TriggerAll(wm);
}

void BucketsOperator::TriggerAll(Time wm) {
  if (last_wm_ != kNoTime && wm <= last_wm_) return;
  int64_t cwm = last_cwm_;
  if (has_count_windows_) {
    Tuple probe;
    probe.ts = wm;
    probe.seq = ~0ULL;
    cwm = evicted_count_ +
          (std::upper_bound(count_buffer_.begin(), count_buffer_.end(), probe,
                            TupleLess) -
           count_buffer_.begin());
  }
  for (size_t w = 0; w < windows_.size(); ++w) {
    Collector c;
    if (windows_[w]->measure() == Measure::kCount) {
      windows_[w]->TriggerWindows(c, last_cwm_, cwm);
    } else {
      windows_[w]->TriggerWindows(c, last_wm_, wm);
    }
    for (const auto& [s, e] : c.windows) {
      EmitBucket(w, s, /*update=*/false, e);
    }
  }
  last_wm_ = wm;
  last_cwm_ = std::max(last_cwm_, cwm);
  Evict(wm);
}

void BucketsOperator::EmitBucket(size_t w, Time start, bool update,
                                 Time end_hint) {
  auto it = buckets_[w].find(start);
  for (size_t a = 0; a < aggs_.size(); ++a) {
    WindowResult r;
    r.window_id = static_cast<int>(w);
    r.agg_id = static_cast<int>(a);
    r.start = start;
    r.end = it != buckets_[w].end() ? it->second.end : end_hint;
    // The bucket's final aggregate is pre-computed: emission is a lookup
    // plus Lower — the nanosecond latency of Figure 11. Empty instances
    // lower the identity partial: aggregations like count define a
    // non-empty value (0) for an empty window.
    r.value = it != buckets_[w].end() ? aggs_[a]->Lower(it->second.aggs[a])
                                      : aggs_[a]->Lower(Partial{});
    r.is_update = update;
    results_.push_back(std::move(r));
  }
}

void BucketsOperator::Evict(Time wm) {
  for (size_t w = 0; w < windows_.size(); ++w) {
    const bool is_count = windows_[w]->measure() == Measure::kCount;
    const Time bound =
        is_count ? last_cwm_ : wm - allowed_lateness_;
    auto& map = buckets_[w];
    for (auto it = map.begin(); it != map.end();) {
      if (it->second.end <= bound) {
        it = map.erase(it);
      } else {
        break;  // keyed by start; later buckets end later for CF windows
      }
    }
    windows_[w]->EvictState(wm - allowed_lateness_);
  }
  if (has_count_windows_) {
    // Retain the horizon needed by the longest count window plus lateness.
    int64_t safe_rank = last_cwm_;
    for (const WindowPtr& w : windows_) {
      if (w->measure() != Measure::kCount) continue;
      safe_rank = std::min(safe_rank, w->EvictionSafePoint(last_cwm_));
    }
    while (!count_buffer_.empty() && evicted_count_ < safe_rank &&
           count_buffer_.front().ts < wm - allowed_lateness_) {
      count_buffer_.pop_front();
      ++evicted_count_;
    }
  }
}

std::vector<WindowResult> BucketsOperator::TakeResults() {
  std::vector<WindowResult> out;
  out.swap(results_);
  return out;
}

size_t BucketsOperator::TotalBuckets() const {
  size_t n = 0;
  for (const auto& map : buckets_) n += map.size();
  return n;
}

size_t BucketsOperator::MemoryUsageBytes() const {
  size_t bytes = count_buffer_.size() * MemoryModel::kTupleBytes;
  for (const auto& map : buckets_) {
    for (const auto& [start, b] : map) {
      bytes += MemoryModel::kBucketMetaBytes;
      for (const Partial& p : b.aggs) bytes += p.TotalBytes();
      bytes += b.tuples.capacity() * MemoryModel::kTupleBytes;
    }
  }
  return bytes;
}

}  // namespace scotty
