#ifndef SCOTTY_AGGREGATES_ORDERED_H_
#define SCOTTY_AGGREGATES_ORDERED_H_

#include <string>
#include <vector>

#include "aggregates/aggregate_function.h"

namespace scotty {

/// Concat: the sequence of values in aggregation order. Associative but
/// NOT commutative — the paper's example of a workload characteristic that
/// forces the slicing core to keep source tuples on out-of-order streams and
/// to recompute slice aggregates from them (Section 5.1 condition (1),
/// Section 5.2 "Update").
///
/// Holistic (unbounded partial state).
class ConcatAggregation : public AggregateFunction {
 public:
  Partial Lift(const Tuple& t) const override {
    SeqState s;
    s.seq.push_back(t.value);
    return Partial{Partial::Storage{std::move(s)}};
  }

  void Combine(Partial& into, const Partial& other) const override {
    if (other.IsIdentity()) return;
    if (into.IsIdentity()) {
      into = other;
      return;
    }
    SeqState& a = into.Get<SeqState>();
    const SeqState& b = other.Get<SeqState>();
    a.seq.insert(a.seq.end(), b.seq.begin(), b.seq.end());
  }

  Value Lower(const Partial& p) const override {
    if (p.IsIdentity()) return Value{std::vector<double>{}};
    return Value{p.Get<SeqState>().seq};
  }

  bool IsCommutative() const override { return false; }
  AggClass Class() const override { return AggClass::kHolistic; }
  std::string Name() const override { return "concat"; }
};

}  // namespace scotty

#endif  // SCOTTY_AGGREGATES_ORDERED_H_
