#include "query/query_registry.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "aggregates/registry.h"
#include "core/query_builder.h"

namespace scotty {

namespace {

constexpr uint32_t kRegistryTag = 0x51524547;  // "QREG"
constexpr uint32_t kRegistryVersion = 1;

class Collector : public WindowCallback {
 public:
  void OnWindow(Time start, Time end) override {
    windows.push_back({start, end});
  }
  std::vector<std::pair<Time, Time>> windows;
};

}  // namespace

QueryRegistry::QueryRegistry(Options opts)
    : opts_(opts),
      engine_(std::make_unique<GeneralSlicingOperator>(opts.engine)),
      guard_(std::make_shared<RetentionGuardWindow>()) {
  const int slot = engine_->AddWindow(guard_);
  assert(slot == 0);
  (void)slot;
  WindowSlot guard_slot;
  guard_slot.alive = true;
  slots_.push_back(std::move(guard_slot));
}

QueryRegistry::QueryId QueryRegistry::Register(const QueryBuilder& builder,
                                               std::string* error) {
  if (!builder.HasPortableDef()) {
    if (error) {
      *error = "builder holds custom window/aggregation objects with no "
               "textual description; register a QueryDef instead";
    }
    return kInvalidQuery;
  }
  return Register(builder.Def(), error);
}

QueryRegistry::QueryId QueryRegistry::Register(const QueryDef& def,
                                               std::string* error) {
  const auto fail = [&](std::string msg) {
    if (error) *error = std::move(msg);
    return kInvalidQuery;
  };
  if (def.windows.empty()) return fail("query has no windows");
  if (def.aggs.empty()) return fail("query has no aggregations");

  std::vector<WindowDesc> descs(def.windows.size());
  for (size_t i = 0; i < def.windows.size(); ++i) {
    if (!WindowDesc::Parse(def.windows[i], &descs[i])) {
      return fail("bad window description '" + def.windows[i] + "'");
    }
    if (engine_started_ && !descs[i].IsContextFreeTime()) {
      return fail("mid-stream registration supports only context-free time "
                  "windows, got '" + def.windows[i] + "'");
    }
  }

  // Resolve aggregations up front so registration is all-or-nothing: the
  // engine's store cannot grow aggregation columns once the stream started.
  std::vector<int> agg_slots(def.aggs.size(), -1);
  std::vector<std::pair<std::string, AggregateFunctionPtr>> new_aggs;
  for (size_t i = 0; i < def.aggs.size(); ++i) {
    const std::string& name = def.aggs[i];
    for (size_t s = 0; s < agg_names_.size(); ++s) {
      if (agg_names_[s] == name) {
        agg_slots[i] = static_cast<int>(s);
        break;
      }
    }
    if (agg_slots[i] >= 0) continue;
    for (size_t n = 0; n < new_aggs.size(); ++n) {
      if (new_aggs[n].first == name) {
        agg_slots[i] = static_cast<int>(agg_names_.size() + n);
        break;
      }
    }
    if (agg_slots[i] >= 0) continue;
    if (engine_started_) {
      return fail("mid-stream registration cannot introduce aggregation '" +
                  name + "' (columns are fixed at the first tuple)");
    }
    AggregateFunctionPtr fn = MakeAggregation(name);
    if (!fn) return fail("unknown aggregation '" + name + "'");
    agg_slots[i] = static_cast<int>(agg_names_.size() + new_aggs.size());
    new_aggs.emplace_back(name, std::move(fn));
  }

  // Validation passed; mutate.
  for (auto& [name, fn] : new_aggs) {
    const int slot = engine_->AddAggregation(std::move(fn));
    assert(slot == static_cast<int>(agg_names_.size()));
    (void)slot;
    agg_names_.push_back(name);
  }

  Query q;
  q.id = next_query_id_++;
  q.agg_slots = std::move(agg_slots);
  q.global_base = next_global_window_;
  next_global_window_ += static_cast<int>(descs.size());
  if (engine_started_) {
    const Time seen =
        std::max(engine_->max_event_time(), engine_->last_watermark());
    if (seen != kNoTime) q.horizon = seen + 1;
  }

  for (WindowDesc& desc : descs) {
    PlannedWindow pw;
    pw.desc = desc;
    const std::string key = desc.ToString();

    int dedup = -1;
    for (size_t s = 1; s < slots_.size(); ++s) {
      if (slots_[s].alive && slots_[s].desc == key) {
        dedup = static_cast<int>(s);
        break;
      }
    }
    if (dedup >= 0) {
      pw.plan = PlanKind::kSharedDedup;
      pw.slot = dedup;
      ++slots_[dedup].refs;
      q.windows.push_back(std::move(pw));
      continue;
    }

    // Factor-Windows rewrite: a CF time window of length L / slide S folds
    // over a live tumbling base of length g when g divides both. Largest
    // eligible g minimizes the fold fan-in L/g.
    if (opts_.enable_rewrites && desc.IsContextFreeTime()) {
      const Time length = desc.length;
      const Time slide =
          desc.kind == WindowDesc::Kind::kSliding ? desc.slide : desc.length;
      int best = -1;
      Time best_g = 0;
      for (size_t s = 1; s < slots_.size(); ++s) {
        const WindowSlot& slot = slots_[s];
        if (!slot.alive) continue;
        if (slot.parsed.kind != WindowDesc::Kind::kTumbling ||
            slot.parsed.measure != Measure::kEventTime) {
          continue;
        }
        const Time g = slot.parsed.length;
        if (g >= length || length % g != 0 || slide % g != 0) continue;
        if (length / g > static_cast<Time>(opts_.max_rewrite_fan_in)) continue;
        if (g > best_g) {
          best = static_cast<int>(s);
          best_g = g;
        }
      }
      if (best >= 0) {
        pw.plan = PlanKind::kDerived;
        pw.slot = best;
        ++slots_[best].refs;
        pw.enumerator = desc.Instantiate();
        pw.derived.base_slot = best;
        pw.derived.granule = best_g;
        pw.derived.length = length;
        pw.derived.slide = slide;
        pw.derived.prev_emit = engine_->last_watermark();
        has_derived_ = true;
        q.windows.push_back(std::move(pw));
        continue;
      }
    }

    pw.plan = PlanKind::kShared;
    pw.slot = engine_->AddWindow(desc.Instantiate());
    assert(pw.slot == static_cast<int>(slots_.size()));
    WindowSlot slot;
    slot.desc = key;
    slot.parsed = desc;
    slot.refs = 1;
    slot.alive = true;
    slots_.push_back(std::move(slot));
    q.windows.push_back(std::move(pw));
  }

  const QueryId id = q.id;
  queries_.emplace(id, std::move(q));
  subs_stale_ = true;
  UpdateRetentionFloor();
  return id;
}

bool QueryRegistry::Deregister(QueryId id) {
  auto it = queries_.find(id);
  if (it == queries_.end()) return false;
  for (const PlannedWindow& pw : it->second.windows) {
    WindowSlot& slot = slots_[static_cast<size_t>(pw.slot)];
    if (--slot.refs == 0 && pw.slot != 0) {
      engine_->RemoveWindow(pw.slot);
      slot.alive = false;
    }
  }
  queries_.erase(it);
  has_derived_ = false;
  for (const auto& [qid, q] : queries_) {
    for (const PlannedWindow& pw : q.windows) {
      if (pw.plan == PlanKind::kDerived) has_derived_ = true;
    }
  }
  subs_stale_ = true;
  UpdateRetentionFloor();
  return true;
}

std::vector<WindowResult> QueryRegistry::TakeQueryResults(QueryId id) {
  DrainEngine();
  auto it = queries_.find(id);
  if (it == queries_.end()) return {};
  std::vector<WindowResult> out;
  out.swap(it->second.pending);
  return out;
}

QueryRegistry::QueryPlan QueryRegistry::Plan(QueryId id) const {
  QueryPlan plan;
  auto it = queries_.find(id);
  if (it == queries_.end()) return plan;
  plan.alive = true;
  plan.horizon = it->second.horizon;
  for (const PlannedWindow& pw : it->second.windows) {
    plan.windows.push_back(pw.plan);
  }
  return plan;
}

size_t QueryRegistry::EngineWindows() const {
  size_t n = 0;
  for (size_t s = 1; s < slots_.size(); ++s) {
    if (slots_[s].alive) ++n;
  }
  return n;
}

int QueryRegistry::GlobalWindowId(QueryId id, int local_window_id) const {
  auto it = queries_.find(id);
  if (it == queries_.end()) return -1;
  if (local_window_id < 0 ||
      local_window_id >= static_cast<int>(it->second.windows.size())) {
    return -1;
  }
  return it->second.global_base + local_window_id;
}

bool QueryRegistry::InOrderBatchNeverLate(std::span<const Tuple> batch) const {
  if (batch.empty()) return true;
  const Time lw = engine_->last_watermark();
  bool ok = lw == kNoTime || batch.front().ts >= lw;
  for (size_t i = 1; ok && i < batch.size(); ++i) {
    ok = batch[i].ts >= batch[i - 1].ts;
  }
  return ok;
}

bool QueryRegistry::IsAdmissibleLate(Time ts) const {
  const Time lw = engine_->last_watermark();
  if (lw == kNoTime || ts > lw) return false;
  return ts >= lw - opts_.engine.allowed_lateness;
}

void QueryRegistry::ProcessTuple(const Tuple& t) {
  engine_started_ = true;
  late_scratch_.clear();
  if (has_derived_ && IsAdmissibleLate(t.ts)) late_scratch_.push_back(t.ts);
  engine_->ProcessTuple(t);
  AfterIngest(late_scratch_);
}

void QueryRegistry::ProcessTupleBatch(std::span<const Tuple> batch) {
  engine_started_ = true;
  if (has_derived_ && opts_.engine.stream_in_order) {
    // On declared-in-order streams the watermark advances per tuple, so the
    // late-mirroring pre-scan below would race it. But a batch that is
    // internally sorted and starts at or above the engine watermark cannot
    // contain an admissible-late tuple at all (a tie with the per-tuple
    // watermark lands in the granule the watermark sits in, never inside an
    // already-emitted window), so no mirroring is needed and the batched
    // engine path is bit-identical. Only disordered data declared in-order
    // still takes the per-tuple route.
    if (InOrderBatchNeverLate(batch)) {
      late_scratch_.clear();
      engine_->ProcessTupleBatch(batch);
      AfterIngest(late_scratch_);
      return;
    }
    for (const Tuple& t : batch) ProcessTuple(t);
    return;
  }
  late_scratch_.clear();
  if (has_derived_) {
    for (const Tuple& t : batch) {
      if (IsAdmissibleLate(t.ts)) late_scratch_.push_back(t.ts);
    }
  }
  engine_->ProcessTupleBatch(batch);
  AfterIngest(late_scratch_);
}

void QueryRegistry::ProcessTupleColumns(const TupleColumnsView& cols) {
  engine_started_ = true;
  if (has_derived_ && opts_.engine.stream_in_order) {
    // Same sorted-batch fast path as ProcessTupleBatch.
    const Time lw = engine_->last_watermark();
    bool never_late = cols.size == 0 || lw == kNoTime || cols.ts[0] >= lw;
    for (size_t i = 1; never_late && i < cols.size; ++i) {
      never_late = cols.ts[i] >= cols.ts[i - 1];
    }
    if (never_late) {
      late_scratch_.clear();
      engine_->ProcessTupleColumns(cols);
      AfterIngest(late_scratch_);
      return;
    }
    WindowOperator::ProcessTupleColumns(cols);  // row-materialized per-tuple
    return;
  }
  late_scratch_.clear();
  if (has_derived_) {
    for (size_t i = 0; i < cols.size; ++i) {
      if (IsAdmissibleLate(cols.ts[i])) late_scratch_.push_back(cols.ts[i]);
    }
  }
  engine_->ProcessTupleColumns(cols);
  AfterIngest(late_scratch_);
}

void QueryRegistry::ProcessWatermark(Time wm) {
  engine_started_ = true;
  engine_->ProcessWatermark(wm);
  late_scratch_.clear();
  AfterIngest(late_scratch_);
}

void QueryRegistry::MergePreAggregatedSlice(Time start, Time end, Time t_first,
                                            Time t_last, uint64_t count,
                                            std::span<const Partial> partials) {
  engine_started_ = true;
  engine_->MergePreAggregatedSlice(start, end, t_first, t_last, count,
                                   partials);
  if (has_derived_) InvalidateGranulesOverlapping(start, end);
}

void QueryRegistry::AfterIngest(const std::vector<Time>& late_ts) {
  DrainEngine();
  if (!has_derived_) return;
  const Time lw = engine_->last_watermark();
  if (lw == kNoTime) return;
  const Time floor = engine_->watermark_floor();

  // A late tuple may have landed inside cached granules; recompute them.
  for (Time ts : late_ts) InvalidateGranulesAt(ts);

  for (auto& [id, q] : queries_) {
    for (size_t w = 0; w < q.windows.size(); ++w) {
      PlannedWindow& pw = q.windows[w];
      if (pw.plan != PlanKind::kDerived) continue;
      // Mirror of WindowManager::EmitLateUpdates: already-emitted windows
      // (end <= prev_emit) containing the late tuple get is_update results.
      for (Time ts : late_ts) {
        if (pw.derived.prev_emit == kNoTime) continue;
        EmitDerived(q, static_cast<int>(w), std::max(ts, floor),
                    pw.derived.prev_emit, ts, /*is_update=*/true);
      }
      // Trigger sweep: windows whose end the engine watermark passed.
      const Time prev =
          pw.derived.prev_emit == kNoTime ? floor : pw.derived.prev_emit;
      if (lw > prev) {
        EmitDerived(q, static_cast<int>(w), prev, lw, kMaxTime,
                    /*is_update=*/false);
      }
      pw.derived.prev_emit = lw;
    }
  }
  UpdateRetentionFloor();
}

void QueryRegistry::EmitDerived(Query& q, int local_window, Time prev,
                                Time curr, Time late_ts, bool is_update) {
  if (curr <= prev) return;
  PlannedWindow& pw = q.windows[static_cast<size_t>(local_window)];
  const DerivedPlan& d = pw.derived;
  Collector c;
  pw.enumerator->TriggerWindows(c, prev, curr);
  for (const auto& [s, e] : c.windows) {
    if (is_update && s > late_ts) continue;
    if (q.horizon != kNoTime && s < q.horizon) continue;
    for (size_t la = 0; la < q.agg_slots.size(); ++la) {
      const int agg_slot = q.agg_slots[la];
      const AggregateFunctionPtr& fn =
          engine_->queries().aggs[static_cast<size_t>(agg_slot)];
      Partial acc = fn->Identity();
      for (Time g0 = s; g0 < e; g0 += d.granule) {
        fn->Combine(acc, GranulePartial(d.base_slot, g0, d.granule, agg_slot));
      }
      WindowResult r;
      r.window_id = local_window;
      r.agg_id = static_cast<int>(la);
      r.start = s;
      r.end = e;
      r.value = fn->Lower(acc);
      r.is_update = is_update;
      q.pending.push_back(std::move(r));
    }
  }
}

const Partial& QueryRegistry::GranulePartial(int base_slot, Time start,
                                             Time granule, int agg_slot) {
  const GranuleKey key{base_slot, start, agg_slot};
  auto it = granule_cache_.find(key);
  if (it == granule_cache_.end()) {
    it = granule_cache_
             .emplace(key, engine_->QueryTimeRangePartial(
                               static_cast<size_t>(agg_slot), start,
                               start + granule))
             .first;
  }
  return it->second;
}

void QueryRegistry::InvalidateGranulesAt(Time ts) {
  for (auto it = granule_cache_.begin(); it != granule_cache_.end();) {
    const auto& [slot, start, agg] = it->first;
    const Time g = slots_[static_cast<size_t>(slot)].parsed.length;
    if (start <= ts && ts < start + g) {
      it = granule_cache_.erase(it);
    } else {
      ++it;
    }
  }
}

void QueryRegistry::InvalidateGranulesOverlapping(Time start, Time end) {
  for (auto it = granule_cache_.begin(); it != granule_cache_.end();) {
    const auto& [slot, gstart, agg] = it->first;
    const Time g = slots_[static_cast<size_t>(slot)].parsed.length;
    if (gstart < end && start < gstart + g) {
      it = granule_cache_.erase(it);
    } else {
      ++it;
    }
  }
}

void QueryRegistry::UpdateRetentionFloor() {
  if (!has_derived_) {
    guard_->SetRetentionFloor(false, kNoTime);
    granule_cache_.clear();
    return;
  }
  bool keep_all = false;
  Time floor = kMaxTime;
  for (const auto& [id, q] : queries_) {
    for (const PlannedWindow& pw : q.windows) {
      if (pw.plan != PlanKind::kDerived) continue;
      Time f;
      if (pw.derived.prev_emit == kNoTime) {
        if (q.horizon == kNoTime) {
          // Registered before the stream, nothing emitted yet: every slice
          // may still contribute to this window's first emissions.
          keep_all = true;
          continue;
        }
        f = q.horizon;
      } else {
        f = pw.enumerator->EvictionSafePoint(pw.derived.prev_emit);
        if (q.horizon != kNoTime) f = std::max(f, q.horizon);
      }
      floor = std::min(floor, f);
    }
  }
  guard_->SetRetentionFloor(true, keep_all ? kNoTime : floor);

  // Granules entirely below what any derived window can still read (floor
  // minus the lateness that could resurrect an emitted window) are garbage.
  if (!keep_all && floor != kMaxTime) {
    const Time bound = floor - opts_.engine.allowed_lateness;
    for (auto it = granule_cache_.begin(); it != granule_cache_.end();) {
      const auto& [slot, gstart, agg] = it->first;
      const Time g = slots_[static_cast<size_t>(slot)].parsed.length;
      if (gstart + g <= bound) {
        it = granule_cache_.erase(it);
      } else {
        ++it;
      }
    }
  }
}

void QueryRegistry::RebuildSubscribers() {
  slot_subs_.assign(slots_.size(), {});
  for (const auto& [id, q] : queries_) {
    for (size_t w = 0; w < q.windows.size(); ++w) {
      const PlannedWindow& pw = q.windows[w];
      if (pw.plan == PlanKind::kDerived) continue;
      slot_subs_[static_cast<size_t>(pw.slot)].push_back(
          Subscriber{id, static_cast<int>(w)});
    }
  }
  subs_stale_ = false;
}

void QueryRegistry::DrainEngine() {
  engine_scratch_.clear();
  engine_->TakeResultsInto(&engine_scratch_);
  if (engine_scratch_.empty()) return;
  if (subs_stale_) RebuildSubscribers();
  for (const WindowResult& r : engine_scratch_) {
    const size_t slot = static_cast<size_t>(r.window_id);
    if (slot >= slot_subs_.size()) continue;
    for (const Subscriber& sub : slot_subs_[slot]) {
      Query& q = queries_.at(sub.query);
      // The engine emits every aggregation for every window; a query only
      // sees the aggregations its definition names.
      int local_agg = -1;
      for (size_t a = 0; a < q.agg_slots.size(); ++a) {
        if (q.agg_slots[a] == r.agg_id) {
          local_agg = static_cast<int>(a);
          break;
        }
      }
      if (local_agg < 0) continue;
      if (q.horizon != kNoTime && r.start < q.horizon) continue;
      WindowResult out = r;
      out.window_id = sub.local_window;
      out.agg_id = local_agg;
      q.pending.push_back(std::move(out));
    }
  }
}

std::vector<WindowResult> QueryRegistry::TakeResults() {
  std::vector<WindowResult> out;
  TakeResultsInto(&out);
  return out;
}

void QueryRegistry::TakeResultsInto(std::vector<WindowResult>* out) {
  DrainEngine();
  for (auto& [id, q] : queries_) {
    for (WindowResult& r : q.pending) {
      r.window_id += q.global_base;
      out->push_back(std::move(r));
    }
    q.pending.clear();
  }
}

size_t QueryRegistry::MemoryUsageBytes() const {
  size_t bytes = engine_->MemoryUsageBytes();
  bytes += granule_cache_.size() *
           (sizeof(GranuleKey) + sizeof(Partial) + 4 * sizeof(void*));
  for (const auto& [id, q] : queries_) {
    bytes += q.pending.capacity() * sizeof(WindowResult);
  }
  return bytes;
}

std::string QueryRegistry::Name() const {
  return "query-registry(" + engine_->Name() + ")";
}

void QueryRegistry::SerializeState(state::Writer& w) const {
  w.Tag(kRegistryTag);
  w.U32(kRegistryVersion);

  // Options fingerprint: a restore target constructed differently would
  // rebuild a differently-behaving engine; fail fast instead.
  w.Bool(opts_.engine.stream_in_order);
  w.I64(opts_.engine.allowed_lateness);
  w.U8(static_cast<uint8_t>(opts_.engine.store_mode));
  w.Bool(opts_.engine.force_store_tuples);
  w.Bool(opts_.engine.slice_at_window_ends);
  w.Bool(opts_.enable_rewrites);
  w.I64(opts_.max_rewrite_fan_in);

  w.Bool(engine_started_);
  w.I64(next_query_id_);
  w.I64(next_global_window_);

  w.U32(static_cast<uint32_t>(agg_names_.size()));
  for (const std::string& name : agg_names_) w.Str(name);

  w.U32(static_cast<uint32_t>(slots_.size()));
  for (const WindowSlot& slot : slots_) {
    w.Str(slot.desc);
    w.Bool(slot.alive);
    w.I64(slot.refs);
  }

  w.U32(static_cast<uint32_t>(queries_.size()));
  for (const auto& [id, q] : queries_) {
    w.I64(id);
    w.I64(q.global_base);
    w.I64(q.horizon);
    w.U32(static_cast<uint32_t>(q.windows.size()));
    for (const PlannedWindow& pw : q.windows) {
      w.Str(pw.desc.ToString());
      w.U8(static_cast<uint8_t>(pw.plan));
      w.I64(pw.slot);
      if (pw.plan == PlanKind::kDerived) {
        w.I64(pw.derived.base_slot);
        w.I64(pw.derived.granule);
        w.I64(pw.derived.length);
        w.I64(pw.derived.slide);
        w.I64(pw.derived.prev_emit);
      }
    }
    w.U32(static_cast<uint32_t>(q.agg_slots.size()));
    for (int slot : q.agg_slots) w.I64(slot);
    w.U32(static_cast<uint32_t>(q.pending.size()));
    for (const WindowResult& r : q.pending) SerializeWindowResult(w, r);
  }

  engine_->SerializeState(w);
}

void QueryRegistry::DeserializeState(state::Reader& r) {
  r.Tag(kRegistryTag);
  const uint32_t version = r.U32();
  if (!r.ok() || version != kRegistryVersion) {
    r.Fail();
    return;
  }

  const bool in_order = r.Bool();
  const Time lateness = r.I64();
  const uint8_t store_mode = r.U8();
  const bool force_store = r.Bool();
  const bool slice_at_ends = r.Bool();
  const bool rewrites = r.Bool();
  const int64_t fan_in = r.I64();
  if (!r.ok() || in_order != opts_.engine.stream_in_order ||
      lateness != opts_.engine.allowed_lateness ||
      store_mode != static_cast<uint8_t>(opts_.engine.store_mode) ||
      force_store != opts_.engine.force_store_tuples ||
      slice_at_ends != opts_.engine.slice_at_window_ends ||
      rewrites != opts_.enable_rewrites ||
      fan_in != opts_.max_rewrite_fan_in) {
    r.Fail();
    return;
  }

  const bool started = r.Bool();
  const QueryId next_id = static_cast<QueryId>(r.I64());
  const int next_global = static_cast<int>(r.I64());

  // Rebuild the engine from scratch: replay aggregations, then every window
  // slot in id order (dead slots are added then removed so live ids match),
  // then restore the engine's own state on top.
  engine_ = std::make_unique<GeneralSlicingOperator>(opts_.engine);
  guard_ = std::make_shared<RetentionGuardWindow>();
  slots_.clear();
  agg_names_.clear();
  queries_.clear();
  granule_cache_.clear();
  slot_subs_.clear();
  engine_started_ = started;
  next_query_id_ = next_id;
  next_global_window_ = next_global;

  const uint32_t nagg = r.U32();
  for (uint32_t a = 0; a < nagg && r.ok(); ++a) {
    const std::string name = r.Str();
    AggregateFunctionPtr fn = MakeAggregation(name);
    if (!fn) {
      r.Fail();
      return;
    }
    engine_->AddAggregation(std::move(fn));
    agg_names_.push_back(name);
  }

  const uint32_t nslots = r.U32();
  if (!r.ok() || nslots == 0) {
    r.Fail();
    return;
  }
  for (uint32_t s = 0; s < nslots && r.ok(); ++s) {
    WindowSlot slot;
    slot.desc = r.Str();
    slot.alive = r.Bool();
    slot.refs = static_cast<int>(r.I64());
    if (s == 0) {
      if (!slot.desc.empty()) {
        r.Fail();
        return;
      }
      const int id = engine_->AddWindow(guard_);
      assert(id == 0);
      (void)id;
    } else {
      if (!WindowDesc::Parse(slot.desc, &slot.parsed)) {
        r.Fail();
        return;
      }
      const int id = engine_->AddWindow(slot.parsed.Instantiate());
      assert(id == static_cast<int>(s));
      (void)id;
    }
    slots_.push_back(std::move(slot));
  }
  if (!r.ok()) return;
  for (size_t s = 1; s < slots_.size(); ++s) {
    if (!slots_[s].alive) engine_->RemoveWindow(static_cast<int>(s));
  }

  has_derived_ = false;
  const uint32_t nqueries = r.U32();
  for (uint32_t i = 0; i < nqueries && r.ok(); ++i) {
    Query q;
    q.id = static_cast<QueryId>(r.I64());
    q.global_base = static_cast<int>(r.I64());
    q.horizon = r.I64();
    const uint32_t nwin = r.U32();
    for (uint32_t win = 0; win < nwin && r.ok(); ++win) {
      PlannedWindow pw;
      const std::string desc = r.Str();
      if (!WindowDesc::Parse(desc, &pw.desc)) {
        r.Fail();
        return;
      }
      pw.plan = static_cast<PlanKind>(r.U8());
      pw.slot = static_cast<int>(r.I64());
      if (pw.plan == PlanKind::kDerived) {
        pw.derived.base_slot = static_cast<int>(r.I64());
        pw.derived.granule = r.I64();
        pw.derived.length = r.I64();
        pw.derived.slide = r.I64();
        pw.derived.prev_emit = r.I64();
        pw.enumerator = pw.desc.Instantiate();
        has_derived_ = true;
      }
      q.windows.push_back(std::move(pw));
    }
    const uint32_t naggs = r.U32();
    for (uint32_t a = 0; a < naggs && r.ok(); ++a) {
      q.agg_slots.push_back(static_cast<int>(r.I64()));
    }
    const uint32_t npending = r.U32();
    for (uint32_t p = 0; p < npending && r.ok(); ++p) {
      q.pending.push_back(DeserializeWindowResult(r));
    }
    const QueryId qid = q.id;
    queries_.emplace(qid, std::move(q));
  }
  if (!r.ok()) return;

  engine_->DeserializeState(r);
  if (!r.ok()) return;

  subs_stale_ = true;
  UpdateRetentionFloor();
}

}  // namespace scotty
