#ifndef SCOTTY_CORE_SLICE_H_
#define SCOTTY_CORE_SLICE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "aggregates/aggregate_function.h"
#include "common/memory.h"
#include "common/time.h"
#include "common/tuple.h"
#include "common/tuple_batch.h"
#include "state/serde.h"

namespace scotty {

/// A stream slice: a non-overlapping chunk of the stream with one partial
/// aggregate per registered aggregation function (paper Section 5.2).
///
/// Metadata follows the paper exactly: the slice covers the measure range
/// [start, end), while t_first/t_last record the timestamps of the earliest
/// and latest tuple actually contained (which need not coincide with the
/// slice bounds). When the workload characterization requires it, the slice
/// additionally retains its source tuples, sorted by (ts, seq), to support
/// splits and order-preserving recomputation.
class Slice {
 public:
  Slice(Time start, Time end, size_t num_aggs)
      : start_(start), end_(end), aggs_(num_aggs) {}

  Time start() const { return start_; }
  Time end() const { return end_; }
  Time t_first() const { return t_first_; }
  Time t_last() const { return t_last_; }
  uint64_t tuple_count() const { return tuple_count_; }
  bool empty() const { return tuple_count_ == 0; }

  void set_start(Time s) {
    start_ = s;
    dirty_ = true;
  }
  void set_end(Time e) {
    end_ = e;
    dirty_ = true;
  }

  /// Incremental-checkpoint dirty bit: set by every mutation (construction
  /// included), cleared by the store after a barrier serializes this slice.
  /// A clean slice is guaranteed bit-identical to its image in the previous
  /// barrier's snapshot, so delta snapshots reference it by start time
  /// instead of re-serializing it.
  bool snapshot_dirty() const { return dirty_; }
  void MarkSnapshotClean() { dirty_ = false; }
  void MarkSnapshotDirty() { dirty_ = true; }

  const Partial& agg(size_t i) const { return aggs_[i]; }
  Partial& mutable_agg(size_t i) { return aggs_[i]; }
  size_t num_aggs() const { return aggs_.size(); }

  /// Stored source tuples (empty unless the workload requires retention).
  const std::vector<Tuple>& tuples() const { return tuples_; }
  bool stores_tuples() const { return !tuples_.empty() || tuple_count_ == 0; }

  /// Adds a tuple: one incremental aggregation step per function (the
  /// paper's Update operation). If `store_tuple` is set, the tuple is kept
  /// sorted by (ts, seq). `fns` must match the slice's aggregation count.
  void AddTuple(const Tuple& t,
                const std::vector<AggregateFunctionPtr>& fns,
                bool store_tuple);

  /// Adds a batch of tuples with ONE aggregation dispatch per function
  /// (AggregateFunction::LiftCombineBatch) instead of one per tuple, plus a
  /// single metadata pass. Exactly equivalent to calling AddTuple for every
  /// element in span order; the batched ingestion hot path of the general
  /// slicing operator feeds runs of in-order tuples through here.
  void AddTupleBatch(std::span<const Tuple> batch,
                     const std::vector<AggregateFunctionPtr>& fns,
                     bool store_tuples);

  /// Columnar variant of AddTupleBatch for a MONOTONE run: the caller
  /// guarantees the ts column is non-decreasing (the foldable-run splitter
  /// establishes this). That precondition makes the metadata update O(1) —
  /// t_first/t_last come straight from the run endpoints instead of a
  /// per-tuple min/max pass — and aggregation reads the dense value column
  /// through the SoA kernels (one LiftCombineColumns per function).
  /// Bit-identical to AddTuple per element in column order.
  void AddTupleColumns(const TupleColumnsView& cols,
                       const std::vector<AggregateFunctionPtr>& fns,
                       bool store_tuples);

  /// Merges externally pre-aggregated tuple metadata (count, first/last
  /// timestamps) without touching aggregates; the caller combines partials
  /// separately. Used when a thread-local slice store merges a pre-folded
  /// chunk into this shared slice.
  void NoteTupleRange(Time first, Time last, uint64_t count);

  /// Reinitializes this slice for reuse as [start, end) with `num_aggs`
  /// identity partials, keeping the aggregate and tuple vector capacities
  /// (the AggregateStore freelist recycles evicted slices through this to
  /// keep slice churn off the allocator).
  void Reset(Time start, Time end, size_t num_aggs);

  /// Recomputes all partial aggregates from the stored tuples in (ts, seq)
  /// order. Precondition: tuples were stored. This is the expensive path
  /// taken for non-commutative aggregations on out-of-order arrival and
  /// after splits (paper Section 5.2).
  void RecomputeFromTuples(const std::vector<AggregateFunctionPtr>& fns);

  /// Merges `other` (the immediately following slice) into this one:
  /// extends the range, combines aggregates (this (+)= other), and adopts
  /// the other's tuples. The paper's Merge operation.
  void MergeWith(const Slice& other,
                 const std::vector<AggregateFunctionPtr>& fns);

  /// Splits this slice at `t` (start < t < end): this becomes [start, t),
  /// the returned slice is [t, end). Aggregates of both halves are
  /// recomputed from stored tuples; if no tuples are stored, the split is
  /// only legal when one side is empty of tuples (then it degenerates to a
  /// metadata update). The paper's Split operation.
  Slice SplitAt(Time t, const std::vector<AggregateFunctionPtr>& fns);

  /// Removes the stored tuple with the largest (ts, seq) and returns it.
  /// Used by the count-measure shift of out-of-order processing (Fig. 6).
  /// Precondition: tuples stored and non-empty.
  Tuple PopLastTuple();

  /// Inserts a tuple and updates tuple metadata (count, t_first, t_last)
  /// without touching aggregates (the caller recomputes or combines
  /// separately). Used by count-measure shifts.
  void InsertTupleOnly(const Tuple& t);

  /// Replaces the partial of aggregation `i` (used by incremental
  /// invert-based updates).
  void SetAgg(size_t i, Partial p) {
    aggs_[i] = std::move(p);
    dirty_ = true;
  }

  /// Drops tuple storage (when adaptivity decides tuples are no longer
  /// needed after a query was removed).
  void DropTuples() {
    tuples_.clear();
    tuples_.shrink_to_fit();
    dirty_ = true;
  }

  /// Accounted bytes: metadata + fixed partials + dynamic partial storage +
  /// retained tuples.
  size_t MemoryBytes() const;

  /// Enables last-timestamp side partials: alongside the full per-slice
  /// partial the slice maintains a fold of all tuples with ts < t_last
  /// (prefix) and a fold of the tuples exactly at t_last. This lets SplitAt
  /// cut exactly at an occupied timestamp WITHOUT retaining tuples — the fix
  /// for the in-order FCF punctuation-after-data mis-split (ROADMAP item 1).
  /// Costs one extra Combine per tuple per function, so the slicing operator
  /// only turns it on for in-order FCF workloads that skip tuple storage.
  void EnableLastTsTracking() {
    track_last_ts_ = true;
    dirty_ = true;
  }
  bool TracksLastTs() const { return track_last_ts_; }

  /// True when SplitAt(t) can split exactly despite tuples at t_last == t
  /// and no stored tuples, courtesy of the side partials.
  bool CanSplitAtTrackedLast(Time t) const {
    return track_last_ts_ && tuples_.empty() && !empty() && t == t_last_ &&
           t_first_ < t;
  }

  /// Snapshot support: full state including side partials and retained
  /// tuples. Deserialize replaces this slice's contents entirely.
  void Serialize(state::Writer& w) const;
  void Deserialize(state::Reader& r);

 private:
  void RawInsertSorted(const Tuple& t);
  void TrackTuple(const Tuple& t, const std::vector<AggregateFunctionPtr>& fns);
  void MergeTrackingWith(const Slice& other,
                         const std::vector<AggregateFunctionPtr>& fns);
  void DisableTracking() {
    track_last_ts_ = false;
    prefix_aggs_.clear();
    last_aggs_.clear();
    prev_ts_ = kNoTime;
    last_count_ = 0;
  }

  void NoteTuple(const Tuple& t) {
    if (t_first_ == kNoTime || t.ts < t_first_) t_first_ = t.ts;
    if (t_last_ == kNoTime || t.ts > t_last_) t_last_ = t.ts;
    ++tuple_count_;
  }

  Time start_;
  Time end_;
  Time t_first_ = kNoTime;
  Time t_last_ = kNoTime;
  uint64_t tuple_count_ = 0;
  std::vector<Partial> aggs_;
  std::vector<Tuple> tuples_;  // sorted by (ts, seq) when retained

  // Last-timestamp side partials (EnableLastTsTracking). Invariant while
  // tracking and non-empty: combining prefix_aggs_ with last_aggs_ yields
  // the same fold as aggs_; prev_ts_ is the largest tuple ts < t_last_;
  // last_count_ counts tuples exactly at t_last_. Out-of-order arrival
  // silently disables tracking (the gate only enables it on in-order paths).
  bool track_last_ts_ = false;
  std::vector<Partial> prefix_aggs_;  // fold of tuples with ts < t_last_
  std::vector<Partial> last_aggs_;    // fold of tuples with ts == t_last_
  Time prev_ts_ = kNoTime;
  uint64_t last_count_ = 0;

  // Mutated-since-last-barrier flag (see snapshot_dirty). Fresh slices are
  // dirty by construction.
  bool dirty_ = true;
};

}  // namespace scotty

#endif  // SCOTTY_CORE_SLICE_H_
