# Empty compiler generated dependencies file for cdn_billing_percentile.
# This may be replaced when dependencies are built.
