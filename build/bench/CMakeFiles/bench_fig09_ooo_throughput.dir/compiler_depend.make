# Empty compiler generated dependencies file for bench_fig09_ooo_throughput.
# This may be replaced when dependencies are built.
