# Empty compiler generated dependencies file for scotty_baseline_tests.
# This may be replaced when dependencies are built.
