// Figure 17: Parallelizing the live-visualization dashboard workload.
//
// Setup (paper Section 6.4): the M4 aggregation [26] over 80 concurrent
// windows per operator instance, key-partitioned across a varying number of
// parallel instances; lazy slicing vs buckets (Flink's operator).
//
// Expected shape on the paper's 8-core VM: linear scaling up to the core
// count; slicing an order of magnitude above buckets throughout. On a
// single-core build machine the curve flattens immediately — the series
// still shows the slicing-vs-buckets gap at every degree of parallelism
// (documented in EXPERIMENTS.md).

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "runtime/parallel_executor.h"

namespace scotty {
namespace bench {
namespace {

double RunParallel(Technique tech, size_t degree) {
  ParallelExecutor exec(degree, [tech] {
    return MakeTechnique(tech, /*stream_in_order=*/false,
                         /*allowed_lateness=*/2000,
                         DashboardTumblingWindows(80), {"m4"});
  });
  SensorConfig config = SensorStream::Football();
  config.num_keys = 64;
  SensorStream src(config);
  exec.Start();
  const auto start = std::chrono::steady_clock::now();
  auto elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
  Tuple t;
  uint64_t produced = 0;
  Time max_ts = kNoTime;
  while (elapsed() < 1.0 && produced < 3'000'000) {
    src.Next(&t);
    exec.Push(t);
    if (t.ts > max_ts) max_ts = t.ts;
    if (++produced % 4096 == 0) exec.PushWatermark(max_ts - 2000);
  }
  const double secs = elapsed();
  exec.Finish();
  return static_cast<double>(produced) / secs;
}

void Run() {
  PrintHeader("fig17", "parallel dashboard workload (M4, 80 windows/instance)");
  for (Technique tech : {Technique::kLazySlicing, Technique::kBuckets}) {
    for (size_t degree : {1, 2, 4, 8}) {
      const double tps = RunParallel(tech, degree);
      EmitRow("fig17", TechniqueName(tech), std::to_string(degree), tps,
              "tuples/s");
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace scotty

int main() {
  scotty::bench::Run();
  return 0;
}
