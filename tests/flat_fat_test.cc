// Unit tests for the FlatFAT aggregate tree (ordered range queries, appends,
// middle inserts, eviction).

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "aggregates/basic.h"
#include "aggregates/ordered.h"
#include "common/rng.h"
#include "core/flat_fat.h"
#include "tests/test_util.h"

namespace scotty {
namespace {

using testutil::T;

FlatFat MakeSumTree(const std::vector<double>& values) {
  FlatFat tree(std::make_shared<SumAggregation>());
  SumAggregation sum;
  Time ts = 0;
  for (double v : values) tree.Append(sum.Lift(T(++ts, v)));
  return tree;
}

TEST(FlatFat, EmptyTreeHasIdentityRoot) {
  FlatFat tree(std::make_shared<SumAggregation>());
  EXPECT_TRUE(tree.empty());
  EXPECT_TRUE(tree.Root().IsIdentity());
  EXPECT_TRUE(tree.Query(0, 0).IsIdentity());
}

TEST(FlatFat, RootAggregatesAllLeaves) {
  FlatFat tree = MakeSumTree({1, 2, 3, 4, 5});
  EXPECT_EQ(tree.size(), 5u);
  EXPECT_DOUBLE_EQ(tree.Root().Get<double>(), 15.0);
}

TEST(FlatFat, RangeQueriesMatchPrefixSums) {
  std::vector<double> vals;
  for (int i = 1; i <= 37; ++i) vals.push_back(i);
  FlatFat tree = MakeSumTree(vals);
  for (size_t i = 0; i <= vals.size(); ++i) {
    for (size_t j = i; j <= vals.size(); ++j) {
      double expected = 0;
      for (size_t k = i; k < j; ++k) expected += vals[k];
      const Partial p = tree.Query(i, j);
      if (i == j) {
        EXPECT_TRUE(p.IsIdentity());
      } else {
        EXPECT_DOUBLE_EQ(p.Get<double>(), expected) << i << "," << j;
      }
    }
  }
}

TEST(FlatFat, UpdateLeafPropagatesToRoot) {
  FlatFat tree = MakeSumTree({1, 2, 3, 4});
  SumAggregation sum;
  tree.UpdateLeaf(2, sum.Lift(T(3, 30.0)));
  EXPECT_DOUBLE_EQ(tree.Root().Get<double>(), 1 + 2 + 30 + 4);
  EXPECT_DOUBLE_EQ(tree.Query(2, 3).Get<double>(), 30.0);
}

TEST(FlatFat, CombineIntoLeafAccumulates) {
  FlatFat tree = MakeSumTree({1, 2});
  SumAggregation sum;
  tree.CombineIntoLeaf(0, sum.Lift(T(9, 10.0)));
  EXPECT_DOUBLE_EQ(tree.Leaf(0).Get<double>(), 11.0);
  EXPECT_DOUBLE_EQ(tree.Root().Get<double>(), 13.0);
}

TEST(FlatFat, InsertLeafInMiddleShiftsSuffix) {
  FlatFat tree = MakeSumTree({1, 2, 4, 5});
  SumAggregation sum;
  tree.InsertLeafAt(2, sum.Lift(T(3, 3.0)));
  EXPECT_EQ(tree.size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(tree.Leaf(i).Get<double>(), static_cast<double>(i + 1));
  }
  EXPECT_DOUBLE_EQ(tree.Root().Get<double>(), 15.0);
  EXPECT_DOUBLE_EQ(tree.Query(1, 4).Get<double>(), 2 + 3 + 4);
}

TEST(FlatFat, InsertAtFrontAndBack) {
  FlatFat tree = MakeSumTree({2.0});
  SumAggregation sum;
  tree.InsertLeafAt(0, sum.Lift(T(1, 1.0)));
  tree.InsertLeafAt(2, sum.Lift(T(3, 3.0)));
  EXPECT_DOUBLE_EQ(tree.Leaf(0).Get<double>(), 1.0);
  EXPECT_DOUBLE_EQ(tree.Leaf(2).Get<double>(), 3.0);
  EXPECT_DOUBLE_EQ(tree.Root().Get<double>(), 6.0);
}

TEST(FlatFat, RemoveLeafShiftsSuffix) {
  FlatFat tree = MakeSumTree({1, 2, 3, 4});
  tree.RemoveLeafAt(1);
  EXPECT_EQ(tree.size(), 3u);
  EXPECT_DOUBLE_EQ(tree.Leaf(1).Get<double>(), 3.0);
  EXPECT_DOUBLE_EQ(tree.Root().Get<double>(), 8.0);
}

TEST(FlatFat, PopFrontEvictsAndKeepsQueriesConsistent) {
  FlatFat tree = MakeSumTree({1, 2, 3, 4, 5, 6, 7, 8});
  tree.PopFront(3);
  EXPECT_EQ(tree.size(), 5u);
  EXPECT_DOUBLE_EQ(tree.Leaf(0).Get<double>(), 4.0);
  EXPECT_DOUBLE_EQ(tree.Root().Get<double>(), 4 + 5 + 6 + 7 + 8);
  EXPECT_DOUBLE_EQ(tree.Query(1, 3).Get<double>(), 5 + 6);
}

TEST(FlatFat, PopFrontThenAppendCompacts) {
  FlatFat tree = MakeSumTree({1, 2, 3, 4});
  SumAggregation sum;
  // Slide far enough to force compaction several times.
  Time ts = 100;
  for (int round = 0; round < 50; ++round) {
    tree.PopFront(1);
    tree.Append(sum.Lift(T(++ts, 1.0)));
    EXPECT_EQ(tree.size(), 4u);
  }
  EXPECT_DOUBLE_EQ(tree.Root().Get<double>(), 4.0);
}

TEST(FlatFat, OrderedQueryPreservesNonCommutativeOrder) {
  FlatFat tree(std::make_shared<ConcatAggregation>());
  ConcatAggregation cat;
  for (int i = 1; i <= 9; ++i) tree.Append(cat.Lift(T(i, i)));
  const Partial p = tree.Query(2, 7);
  const std::vector<double> expected = {3, 4, 5, 6, 7};
  EXPECT_EQ(cat.Lower(p).AsSequence(), expected);
  // Root too.
  const std::vector<double> all = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  EXPECT_EQ(cat.Lower(tree.Root()).AsSequence(), all);
}

TEST(FlatFat, RandomizedAgainstBruteForce) {
  Rng rng(2024);
  FlatFat tree(std::make_shared<SumAggregation>());
  SumAggregation sum;
  std::vector<double> shadow;
  Time ts = 0;
  for (int step = 0; step < 400; ++step) {
    const uint64_t op = rng.NextBounded(10);
    if (op < 6 || shadow.empty()) {
      const double v = static_cast<double>(rng.NextBounded(100));
      tree.Append(sum.Lift(T(++ts, v)));
      shadow.push_back(v);
    } else if (op < 8) {
      const size_t i = rng.NextBounded(shadow.size() + 1);
      const double v = static_cast<double>(rng.NextBounded(100));
      tree.InsertLeafAt(i, sum.Lift(T(++ts, v)));
      shadow.insert(shadow.begin() + static_cast<long>(i), v);
    } else {
      const size_t k = 1 + rng.NextBounded(std::min<size_t>(shadow.size(), 3));
      tree.PopFront(k);
      shadow.erase(shadow.begin(), shadow.begin() + static_cast<long>(k));
    }
    ASSERT_EQ(tree.size(), shadow.size());
    // Spot-check a random range.
    if (!shadow.empty()) {
      const size_t i = rng.NextBounded(shadow.size());
      const size_t j = i + rng.NextBounded(shadow.size() - i + 1);
      double expected = 0;
      for (size_t k = i; k < j; ++k) expected += shadow[k];
      const Partial p = tree.Query(i, j);
      EXPECT_DOUBLE_EQ(i == j ? 0.0 : p.Get<double>(),
                       i == j ? 0.0 : expected);
    }
  }
}

TEST(FlatFat, MemoryBytesGrowsWithLeaves) {
  FlatFat small = MakeSumTree({1, 2});
  FlatFat big = MakeSumTree(std::vector<double>(1000, 1.0));
  EXPECT_GT(big.MemoryBytes(), small.MemoryBytes());
}

}  // namespace
}  // namespace scotty
