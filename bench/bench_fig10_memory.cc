// Figure 10: Memory experiments with unordered streams.
//
// (a) time-based windows, memory vs #slices in the allowed lateness
//     (tuples fixed at 50 000);
// (b) time-based windows, memory vs #tuples (slices fixed at 500);
// (c) count-based windows, memory vs #slices (tuples fixed at 50 000);
// (d) count-based windows, memory vs #tuples (slices fixed at 500).
//
// Expected shape (paper Section 6.2.3): with time-based windows, slicing
// and buckets depend only on the slice/window count while tuple buffer and
// aggregate tree grow with the tuple count; with count-based windows every
// technique must retain tuples, so all curves become linear and parallel in
// the tuple count, and slicing starts at the footprint of its slices.

#include <memory>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "windows/tumbling.h"

namespace scotty {
namespace bench {
namespace {

/// Streams `num_tuples` in-order tuples evenly spread over an event-time
/// horizon carved into `num_slices` window lengths, with everything inside
/// the allowed lateness (nothing is evicted or triggered), then reports the
/// operator's accounted memory.
size_t MeasureMemory(Technique tech, bool count_based, int64_t num_tuples,
                     int64_t num_slices) {
  const Time horizon = 1'000'000;
  std::vector<WindowPtr> windows;
  if (count_based) {
    // Count windows of length tuples/slices rank units.
    const int64_t len = std::max<int64_t>(1, num_tuples / num_slices);
    windows.push_back(std::make_shared<TumblingWindow>(len, Measure::kCount));
  } else {
    const Time len = std::max<Time>(1, horizon / num_slices);
    windows.push_back(std::make_shared<TumblingWindow>(len));
  }
  auto op = MakeTechnique(tech, /*stream_in_order=*/false,
                          /*allowed_lateness=*/horizon * 2, windows, {"sum"});
  const Time step = std::max<Time>(1, horizon / num_tuples);
  uint64_t seq = 0;
  for (int64_t i = 0; i < num_tuples; ++i) {
    Tuple t;
    t.ts = static_cast<Time>(i) * step;
    t.value = static_cast<double>(i % 97);
    t.seq = seq++;
    op->ProcessTuple(t);
  }
  return op->MemoryUsageBytes();
}

void Sweep(const std::string& fig, bool count_based, bool vary_slices) {
  const std::vector<Technique> techniques = {
      Technique::kLazySlicing, Technique::kBuckets, Technique::kTupleBuffer,
      Technique::kAggregateTree};
  const std::vector<int64_t> xs = vary_slices
                                      ? std::vector<int64_t>{10, 100, 1000,
                                                             10000}
                                      : std::vector<int64_t>{1000, 10000,
                                                             100000};
  for (Technique tech : techniques) {
    for (int64_t x : xs) {
      const int64_t tuples = vary_slices ? 50'000 : x;
      const int64_t slices = vary_slices ? x : 500;
      const size_t bytes = MeasureMemory(tech, count_based, tuples, slices);
      EmitRow(fig, TechniqueName(tech), std::to_string(x),
              static_cast<double>(bytes), "bytes");
    }
  }
}

void Run() {
  PrintHeader("fig10a", "memory vs #slices, time-based (50k tuples fixed)");
  Sweep("fig10a", /*count_based=*/false, /*vary_slices=*/true);
  PrintHeader("fig10b", "memory vs #tuples, time-based (500 slices fixed)");
  Sweep("fig10b", /*count_based=*/false, /*vary_slices=*/false);
  PrintHeader("fig10c", "memory vs #slices, count-based (50k tuples fixed)");
  Sweep("fig10c", /*count_based=*/true, /*vary_slices=*/true);
  PrintHeader("fig10d", "memory vs #tuples, count-based (500 slices fixed)");
  Sweep("fig10d", /*count_based=*/true, /*vary_slices=*/false);
}

}  // namespace
}  // namespace bench
}  // namespace scotty

int main() {
  scotty::bench::Run();
  return 0;
}
