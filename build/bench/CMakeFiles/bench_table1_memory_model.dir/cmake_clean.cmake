file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_memory_model.dir/bench_table1_memory_model.cc.o"
  "CMakeFiles/bench_table1_memory_model.dir/bench_table1_memory_model.cc.o.d"
  "bench_table1_memory_model"
  "bench_table1_memory_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_memory_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
