#ifndef SCOTTY_TESTING_HARNESS_H_
#define SCOTTY_TESTING_HARNESS_H_

#include <algorithm>
#include <map>
#include <tuple>
#include <vector>

#include "common/time.h"
#include "common/tuple.h"
#include "common/value.h"
#include "core/window_operator.h"

namespace scotty {
namespace testing {

/// Shorthand tuple constructor used throughout the test suites.
inline Tuple T(Time ts, double value, uint64_t seq = 0, int64_t key = 0) {
  Tuple t;
  t.ts = ts;
  t.value = value;
  t.seq = seq;
  t.key = key;
  return t;
}

/// Key identifying a window instance in the result stream.
using ResultKey = std::tuple<int, int, Time, Time>;  // window, agg, start, end

/// Final value per window instance: later emissions (allowed-lateness
/// updates) override earlier ones — the consumer-visible end state.
inline std::map<ResultKey, Value> FinalResults(
    const std::vector<WindowResult>& results) {
  std::map<ResultKey, Value> out;
  for (const WindowResult& r : results) {
    out[{r.window_id, r.agg_id, r.start, r.end}] = r.value;
  }
  return out;
}

/// Feeds tuples in vector order, assigning arrival sequence numbers, then a
/// final watermark; returns all emitted results.
inline std::vector<WindowResult> RunStream(WindowOperator& op,
                                           std::vector<Tuple> tuples,
                                           Time final_wm) {
  uint64_t seq = 0;
  for (Tuple& t : tuples) {
    t.seq = seq++;
    op.ProcessTuple(t);
  }
  op.ProcessWatermark(final_wm);
  return op.TakeResults();
}

/// Like RunStream, but additionally issues a lagging watermark every
/// `wm_every` tuples (wm = max event time seen − wm_lag). Exercises the
/// trigger/update/eviction machinery mid-stream instead of only at the end.
/// With wm_lag ≥ StreamSpec::MaxLateness() no tuple is ever dropped, so the
/// final per-instance results must equal the single-watermark run.
inline std::map<ResultKey, Value> RunToFinalResults(WindowOperator& op,
                                                    const std::vector<Tuple>&
                                                        tuples,
                                                    Time final_wm,
                                                    int wm_every = 0,
                                                    Time wm_lag = 0) {
  std::map<ResultKey, Value> out;
  auto drain = [&] {
    for (const WindowResult& r : op.TakeResults()) {
      out[{r.window_id, r.agg_id, r.start, r.end}] = r.value;
    }
  };
  uint64_t seq = 0;
  Time max_ts = kNoTime;
  Time last_wm = kNoTime;
  for (Tuple t : tuples) {
    t.seq = seq++;
    op.ProcessTuple(t);
    max_ts = std::max(max_ts, t.ts);
    if (wm_every > 0 && seq % static_cast<uint64_t>(wm_every) == 0) {
      const Time wm = max_ts - wm_lag;
      if (wm > last_wm || last_wm == kNoTime) {
        op.ProcessWatermark(wm);
        last_wm = wm;
        drain();
      }
    }
  }
  op.ProcessWatermark(final_wm);
  drain();
  return out;
}

}  // namespace testing
}  // namespace scotty

#endif  // SCOTTY_TESTING_HARNESS_H_
