#!/usr/bin/env bash
# Coverage-guided differential fuzzing session with a persistent local
# corpus (DESIGN.md §8).
#
# Wraps fuzz_differential --guided: seeds from the checked-in regression
# reproducers (tests/corpus/regressions/) plus whatever a previous session
# left in the corpus directory, runs for a wall-clock budget, and persists
# every input that discovered new coverage back into the corpus — so
# repeated invocations keep deepening the same corpus instead of starting
# cold. Failing configs also land in the corpus as one-line reproducers.
#
# Coverage source: on a -DSCOTTY_COVERAGE=ON build the loop is guided by
# SanitizerCoverage edge counts + the semantic feature map; on a plain
# build it degrades to the semantic map alone (the [fuzz-stats] line says
# which: edges=instrumented vs edges=semantic-only).
#
# Usage: guided_fuzz.sh <fuzz_differential_binary> [corpus_dir] [budget_s] [seed]

set -u

BIN=${1:?usage: guided_fuzz.sh <fuzz_differential_binary> [corpus_dir] [budget_s] [seed]}
CORPUS=${2:-.fuzz-corpus}
BUDGET=${3:-60}
SEED=${4:-1}

ROOT=$(cd "$(dirname "$0")/.." && pwd)
REGRESSIONS="$ROOT/tests/corpus/regressions"

mkdir -p "$CORPUS"
echo "guided fuzz: corpus=$CORPUS budget=${BUDGET}s seed=$SEED"
"$BIN" --guided --seed="$SEED" --time-budget-s="$BUDGET" \
  --corpus="$CORPUS" --seed-corpus="$REGRESSIONS" \
  --stats-json="$CORPUS/stats.json" --stats-series=guided
rc=$?
echo "guided fuzz: corpus now holds $(ls "$CORPUS"/*.repro 2>/dev/null | wc -l) entries"
exit "$rc"
