// Differential fuzzing driver: runs query sets through the general slicing
// operator (lazy and eager stores), all three baseline operators, and the
// brute-force oracle, requiring identical final window aggregates
// everywhere. On a mismatch it shrinks the failing case and prints a
// one-line reproducer that replays deterministically:
//
//   fuzz_differential --seed=N --tuples=M --queries=... --aggs=...
//
// Modes:
//   fuzz_differential --seed=1 --runs=50 --tuples=20000   # random sweep
//   fuzz_differential --seed=7 --tuples=400 --queries=sliding:20:7 --aggs=sum
//                                                          # replay one case
//   fuzz_differential --guided --corpus=corpus/ --time-budget-s=60
//                                                          # guided loop
//
// The guided loop (DESIGN.md §8) keeps a corpus of configs that each
// contributed new coverage-map features (semantic features always; sancov
// edges too when built with -DSCOTTY_COVERAGE=ON), mutates energy-weighted
// parents, admits mutants that discover more, minimizes them with the
// shrinker while preserving their contribution, and persists every admitted
// entry to --corpus as a one-line .repro file that doubles as a seed for
// the next run and as a pasteable reproducer.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "aggregates/registry.h"
#include "bench/bench_json.h"
#include "common/rng.h"
#include "testing/corpus.h"
#include "testing/coverage.h"
#include "testing/differential.h"
#include "testing/mutator.h"

namespace {

using scotty::testing::Corpus;
using scotty::testing::CorpusEntry;
using scotty::testing::CoverageMap;
using scotty::testing::DifferentialConfig;
using scotty::testing::DifferentialOutcome;
using scotty::testing::GuidedScheduler;
using scotty::testing::Mutate;
using scotty::testing::ParseWindowSpecs;
using scotty::testing::RandomConfig;
using scotty::testing::RunDifferential;
using scotty::testing::Shrink;
using scotty::testing::ShrinkWhile;
using scotty::testing::Splice;

struct Flags {
  std::map<std::string, std::string> kv;
  bool Has(const std::string& k) const { return kv.count(k) != 0; }
  std::string Str(const std::string& k, const std::string& def = "") const {
    auto it = kv.find(k);
    return it == kv.end() ? def : it->second;
  }
  int64_t Int(const std::string& k, int64_t def) const {
    auto it = kv.find(k);
    return it == kv.end() ? def : std::strtoll(it->second.c_str(), nullptr, 10);
  }
  // Seeds are full-range uint64 (the mutator reseeds with NextU64()); going
  // through Int() would clamp values above INT64_MAX and silently replay a
  // different stream than the reproducer that was persisted.
  uint64_t U64(const std::string& k, uint64_t def) const {
    auto it = kv.find(k);
    return it == kv.end() ? def
                          : std::strtoull(it->second.c_str(), nullptr, 10);
  }
  double Dbl(const std::string& k, double def) const {
    auto it = kv.find(k);
    return it == kv.end() ? def : std::strtod(it->second.c_str(), nullptr);
  }
};

constexpr const char* kKnownFlags[] = {
    "seed",       "tuples",     "runs",      "verbose",    "no-shrink",
    "repro-file", "queries",    "aggs",      "step-lo",    "step-hi",
    "gap-prob",   "gap-len",    "value-range", "punct-prob", "ooo",
    "max-delay",  "burst-prob", "burst-len", "wm-every",   "batch",
    "checkpoint", "crash",      "rescale",   "shared-queries",
    "overload",   "layout",     "kernel",    "guided",     "corpus",
    "seed-corpus", "time-budget-s", "stats-json", "stats-series",
    "no-minimize", "track-coverage"};

bool ParseFlags(int argc, char** argv, Flags* out) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--", 2) != 0) {
      std::fprintf(stderr, "unexpected argument: %s\n", arg);
      return false;
    }
    const char* eq = std::strchr(arg, '=');
    const std::string key =
        eq == nullptr ? std::string(arg + 2) : std::string(arg + 2, eq);
    bool known = false;
    for (const char* k : kKnownFlags) known |= key == k;
    if (!known) {
      std::fprintf(stderr, "unknown flag: --%s\n", key.c_str());
      return false;
    }
    // Bare flags (e.g. --no-shrink) read as "1".
    out->kv[key] = eq == nullptr ? "1" : std::string(eq + 1);
  }
  return true;
}

std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> parts;
  std::string cur;
  for (char c : s) {
    if (c == ',') {
      parts.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) parts.push_back(cur);
  return parts;
}

/// Overlays any explicitly passed stream/watermark flags onto `cfg`. Replay
/// configs are defaults + flags, so reproducer lines never depend on the
/// RandomConfig derivation staying stable.
void ApplyOverrides(const Flags& flags, DifferentialConfig* cfg) {
  auto& s = cfg->stream;
  if (flags.Has("step-lo")) s.step_lo = flags.Int("step-lo", s.step_lo);
  if (flags.Has("step-hi")) s.step_hi = flags.Int("step-hi", s.step_hi);
  if (flags.Has("gap-prob")) {
    s.gap_probability = flags.Dbl("gap-prob", s.gap_probability);
  }
  if (flags.Has("gap-len")) s.gap_length = flags.Int("gap-len", s.gap_length);
  if (flags.Has("value-range")) {
    s.value_range =
        static_cast<uint64_t>(flags.Int("value-range",
                                        static_cast<int64_t>(s.value_range)));
  }
  if (flags.Has("punct-prob")) {
    s.punctuation_probability =
        flags.Dbl("punct-prob", s.punctuation_probability);
  }
  if (flags.Has("ooo")) s.ooo_fraction = flags.Dbl("ooo", s.ooo_fraction);
  if (flags.Has("max-delay")) s.max_delay = flags.Int("max-delay", s.max_delay);
  if (flags.Has("burst-prob")) {
    s.burst_probability = flags.Dbl("burst-prob", s.burst_probability);
  }
  if (flags.Has("burst-len")) {
    s.burst_length = static_cast<int>(flags.Int("burst-len", s.burst_length));
  }
  if (flags.Has("wm-every")) {
    cfg->wm_every = static_cast<int>(flags.Int("wm-every", cfg->wm_every));
  }
  if (flags.Has("batch")) {
    cfg->batch = static_cast<int>(flags.Int("batch", cfg->batch));
  }
  if (flags.Has("checkpoint")) {
    // N > 0: snapshot/restore at tuple N. -1: seed-derived random cut point
    // (forces the checkpoint dimension on for a whole sweep). 0: off.
    cfg->checkpoint = static_cast<int>(flags.Int("checkpoint",
                                                 cfg->checkpoint));
  }
  if (flags.Has("crash")) {
    // N > 0: kill the run at tuple N. -1: seed-derived kill point,
    // persistence mode (sync-full / sync-incremental / async-incremental),
    // and snapshot/delta-log fault (forces the crash-recovery dimension on
    // for a whole sweep — the nightly lane runs 500 seeds this way). 0: off.
    cfg->crash = static_cast<int>(flags.Int("crash", cfg->crash));
  }
  if (flags.Has("rescale")) {
    // Rescaling crash twin: keyed stream on W workers, crash, recover onto
    // W' != W by re-partitioning per-key state. N > 0: crash at tuple N.
    // -1: seed-derived crash point, worker counts, and faults (the nightly
    // rescaling lane runs 500 seeds this way). 0: off.
    cfg->rescale = static_cast<int>(flags.Int("rescale", cfg->rescale));
  }
  if (flags.Has("shared-queries")) {
    // Multi-query shared slicing: the config's query plus companion queries
    // in one QueryRegistry, each checked against its own solo run. N > 0:
    // N static companions. -1: seed-derived companions plus mid-stream
    // register/deregister dynamics (the nightly shared lane runs 500 seeds
    // this way). 0: off.
    cfg->shared =
        static_cast<int>(flags.Int("shared-queries", cfg->shared));
  }
  if (flags.Has("overload")) {
    // Overload-resilience arm: consumer stall + slow/failing persists with
    // backpressure, watermark-safe shedding, and the auto-fallback
    // persistence ladder; delivered ∪ shed-marked windows must partition
    // the unfaulted run. Any non-zero value derives the fault schedule from
    // the seed (the nightly fault-matrix lane runs 500 seeds this way).
    // 0: off.
    cfg->overload = static_cast<int>(flags.Int("overload", cfg->overload));
  }
  if (flags.Has("layout")) {
    // "soa" adds columnar-ingestion runs with the kernel dispatch pinned to
    // --kernel and (for vector modes) the scalar fallback cross-check.
    cfg->layout = flags.Str("layout", cfg->layout);
  }
  if (flags.Has("kernel")) cfg->kernel = flags.Str("kernel", cfg->kernel);
}

int ReportFailure(const Flags& flags, DifferentialConfig failing,
                  const std::string& detail) {
  std::fprintf(stderr, "FAIL: %s\n", detail.c_str());
  if (!flags.Has("no-shrink")) {
    std::fprintf(stderr, "shrinking...\n");
    failing = Shrink(failing);
  }
  const DifferentialOutcome replay = RunDifferential(failing);
  const std::string repro = "fuzz_differential " + failing.ToFlags();
  std::fprintf(stderr, "still failing with: %s\n",
               replay.ok ? "(shrunk case passes?! report the original)"
                         : replay.detail.c_str());
  std::fprintf(stderr, "reproducer: %s\n", repro.c_str());
  const std::string repro_file = flags.Str("repro-file");
  if (!repro_file.empty()) {
    std::ofstream out(repro_file, std::ios::app);
    out << repro << "\n" << (replay.ok ? detail : replay.detail) << "\n";
  }
  // A failing input is the most valuable corpus entry of all: persist it so
  // the next guided run re-checks the fix and mutates around the bug.
  const std::string corpus_dir = flags.Str("corpus");
  if (!corpus_dir.empty()) {
    CorpusEntry entry;
    entry.cfg = failing;
    std::string err;
    if (!Corpus().Persist(corpus_dir, entry, &err)) {
      std::fprintf(stderr, "corpus persist failed: %s\n", err.c_str());
    }
  }
  return 1;
}

/// Per-run stats: coverage totals, exec counts, corpus growth. The
/// machine-readable rows go to --stats-json in the BENCH_throughput.json
/// format so the tooling's own cost is tracked next to the perf baselines.
void EmitStats(const Flags& flags, const std::string& mode, size_t execs,
               double secs, size_t features, size_t corpus_size) {
  const double eps = secs > 0 ? static_cast<double>(execs) / secs : 0;
  std::printf(
      "[fuzz-stats] mode=%s execs=%zu secs=%.1f exec/s=%.1f "
      "features=%zu corpus=%zu edges=%s\n",
      mode.c_str(), execs, secs, eps, features, corpus_size,
      CoverageMap::Global().EdgeInstrumented() ? "instrumented" : "semantic-only");
  const std::string path = flags.Str("stats-json");
  if (path.empty()) return;
  ::setenv("SCOTTY_BENCH_JSON", path.c_str(), 1);
  const std::string series = flags.Str("stats-series", mode);
  scotty::bench::AppendJsonRow("fuzzer", series, "execs_per_sec", eps,
                               "exec/s");
  scotty::bench::AppendJsonRow("fuzzer", series, "coverage_features",
                               static_cast<double>(features), "features");
  scotty::bench::AppendJsonRow("fuzzer", series, "corpus_entries",
                               static_cast<double>(corpus_size), "entries");
}

/// Shared execution bookkeeping for the guided loop and the random
/// baseline: every differential run (including shrink probes — they spend
/// the same budget) is counted and feature-tracked here.
struct Executor {
  size_t execs = 0;
  std::set<uint32_t> seen;       // authoritative cross-run feature set
  double last_run_ms = 0;        // duration of the most recent Run()
  /// When non-empty, the config line is written here before every run and
  /// the file is removed after a clean return — an assert/crash mid-run
  /// leaves the triggering input behind (differential FAILs return normally
  /// and go through ReportFailure; this catches the aborts).
  std::string crash_log;

  DifferentialOutcome Run(const DifferentialConfig& cfg,
                          std::vector<uint32_t>* features) {
    if (!crash_log.empty()) {
      std::ofstream out(crash_log, std::ios::trunc);
      out << cfg.ToFlags() << "\n";
    }
    const auto t0 = std::chrono::steady_clock::now();
    CoverageMap::Global().BeginRun();
    const DifferentialOutcome o = RunDifferential(cfg);
    CoverageMap::Global().EndRun(features);
    if (!crash_log.empty()) std::remove(crash_log.c_str());
    last_run_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    ++execs;
    return o;
  }

  /// Runs `cfg` and splits its features into (all, newly seen). The new
  /// ones are NOT recorded into `seen` — admission does that, so probe
  /// runs (minimization, replay checks) never consume discoveries.
  DifferentialOutcome RunAndDiff(const DifferentialConfig& cfg,
                                 std::vector<uint32_t>* all,
                                 std::vector<uint32_t>* fresh) {
    const DifferentialOutcome o = Run(cfg, all);
    fresh->clear();
    for (uint32_t f : *all) {
      if (seen.count(f) == 0) fresh->push_back(f);
    }
    return o;
  }
};

int RunGuided(const Flags& flags) {
  const auto start = std::chrono::steady_clock::now();
  auto elapsed_s = [&start] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  const uint64_t seed = flags.U64("seed", 1);
  const int tuples = static_cast<int>(flags.Int("tuples", 600));
  int64_t max_execs = flags.Int("runs", 0);
  double budget_s = flags.Dbl("time-budget-s", 0);
  if (max_execs <= 0 && budget_s <= 0) budget_s = 10;  // always bounded
  const bool verbose = flags.Has("verbose");
  const bool minimize = !flags.Has("no-minimize");
  const std::string corpus_dir = flags.Str("corpus");

  Corpus corpus;
  std::vector<std::string> load_errors;
  if (!corpus_dir.empty()) corpus.LoadDir(corpus_dir, &load_errors);
  for (const std::string& dir : SplitCommas(flags.Str("seed-corpus"))) {
    corpus.LoadDir(dir, &load_errors);
  }
  for (const std::string& e : load_errors) {
    std::fprintf(stderr, "corpus: %s\n", e.c_str());
  }
  if (!load_errors.empty()) return 2;  // a torn corpus should be loud

  GuidedScheduler sched(seed * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL);
  if (corpus.empty()) {
    // Cold start: a handful of RandomConfig points so mutation has
    // structurally diverse parents from the first round.
    for (int i = 0; i < 4; ++i) {
      CorpusEntry entry;
      entry.cfg = RandomConfig(seed + static_cast<uint64_t>(i), tuples);
      ApplyOverrides(flags, &entry.cfg);
      corpus.Add(std::move(entry));
    }
  }
  std::set<std::string> known_lines;
  for (const CorpusEntry& e : corpus.entries()) {
    known_lines.insert(Corpus::CanonicalLine(e.cfg));
  }

  Executor exec;
  if (!corpus_dir.empty()) exec.crash_log = corpus_dir + "/.inflight";
  auto out_of_budget = [&] {
    return (max_execs > 0 &&
            exec.execs >= static_cast<size_t>(max_execs)) ||
           (budget_s > 0 && elapsed_s() >= budget_s);
  };

  // Replay every seed entry first: establishes the baseline coverage the
  // mutants must beat, re-checks the persisted reproducers against the
  // current build, and records each entry's own contribution.
  for (CorpusEntry& entry : corpus.entries()) {
    std::vector<uint32_t> all;
    std::vector<uint32_t> fresh;
    const DifferentialOutcome o = exec.RunAndDiff(entry.cfg, &all, &fresh);
    if (!o.ok) return ReportFailure(flags, entry.cfg, o.detail);
    entry.new_features = fresh;
    entry.cost_ms = exec.last_run_ms;
    exec.seen.insert(fresh.begin(), fresh.end());
    if (out_of_budget()) break;
  }

  size_t admitted = 0;
  uint64_t fresh_seed = seed + 1000003;  // exploration arm's seed stream
  while (!out_of_budget()) {
    const size_t parent_idx = sched.PickParent(corpus);
    DifferentialConfig mutant;
    const uint64_t round = sched.rng().NextBounded(8);
    if (round == 0) {
      // Exploration round: a brand-new RandomConfig point. Mutation walks
      // locally; this keeps the global sampling the random baseline has,
      // so guided strictly contains random as a sub-strategy.
      mutant = RandomConfig(fresh_seed++, tuples);
      ApplyOverrides(flags, &mutant);
    } else if (round == 1 && corpus.size() >= 2) {
      // Crossover round: splice two parents, then mutate the child.
      size_t other = sched.rng().NextBounded(corpus.size());
      if (other == parent_idx) other = (other + 1) % corpus.size();
      mutant = Mutate(Splice(corpus.entries()[parent_idx].cfg,
                             corpus.entries()[other].cfg, sched.rng()),
                      sched.rng());
    } else {
      mutant = Mutate(corpus.entries()[parent_idx].cfg, sched.rng());
    }
    corpus.entries()[parent_idx].picked++;
    if (known_lines.count(Corpus::CanonicalLine(mutant)) != 0) continue;

    std::vector<uint32_t> all;
    std::vector<uint32_t> fresh;
    const DifferentialOutcome o = exec.RunAndDiff(mutant, &all, &fresh);
    if (!o.ok) return ReportFailure(flags, mutant, o.detail);
    if (fresh.empty()) continue;
    const double mutant_cost_ms = exec.last_run_ms;

    // New coverage: minimize while preserving both the PASS verdict and
    // every newly contributed feature, then admit and persist.
    if (minimize && mutant.stream.num_tuples > 256 && !out_of_budget()) {
      const std::set<uint32_t> keep(fresh.begin(), fresh.end());
      mutant = ShrinkWhile(mutant, [&](const DifferentialConfig& c) {
        std::vector<uint32_t> probe;
        if (!exec.Run(c, &probe).ok) return false;
        size_t covered = 0;
        for (uint32_t f : probe) covered += keep.count(f);
        return covered == keep.size();
      });
      if (known_lines.count(Corpus::CanonicalLine(mutant)) != 0) continue;
    }
    exec.seen.insert(fresh.begin(), fresh.end());
    known_lines.insert(Corpus::CanonicalLine(mutant));
    CorpusEntry entry;
    entry.cfg = mutant;
    entry.new_features = fresh;
    entry.cost_ms = mutant_cost_ms;
    corpus.entries()[parent_idx].children_admitted++;
    if (!corpus_dir.empty()) {
      std::string err;
      if (!corpus.Persist(corpus_dir, entry, &err)) {
        std::fprintf(stderr, "corpus persist failed: %s\n", err.c_str());
        return 2;
      }
    }
    corpus.Add(std::move(entry));
    ++admitted;
    if (verbose) {
      std::printf("admit #%zu: +%zu features at exec %zu (%s)\n", admitted,
                  fresh.size(), exec.execs, mutant.ToFlags().c_str());
    }
  }

  EmitStats(flags, "guided", exec.execs, elapsed_s(), exec.seen.size(),
            corpus.size());
  std::printf("OK: guided, %zu exec(s), %zu features, %zu admitted, corpus %zu\n",
              exec.execs, exec.seen.size(), admitted, corpus.size());
  return 0;
}

/// Random sweep with the same coverage accounting as the guided loop — the
/// control arm of the guided-vs-random comparison in EXPERIMENTS.md.
int RunRandomTracked(const Flags& flags) {
  const auto start = std::chrono::steady_clock::now();
  auto elapsed_s = [&start] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
  const uint64_t seed = flags.U64("seed", 1);
  const int tuples = static_cast<int>(flags.Int("tuples", 600));
  int64_t max_execs = flags.Int("runs", 0);
  double budget_s = flags.Dbl("time-budget-s", 0);
  if (max_execs <= 0 && budget_s <= 0) budget_s = 10;

  Executor exec;
  const std::string corpus_dir = flags.Str("corpus");
  if (!corpus_dir.empty()) exec.crash_log = corpus_dir + "/.inflight";
  uint64_t s = seed;
  while ((max_execs <= 0 || exec.execs < static_cast<size_t>(max_execs)) &&
         (budget_s <= 0 || elapsed_s() < budget_s)) {
    DifferentialConfig cfg = RandomConfig(s++, tuples);
    ApplyOverrides(flags, &cfg);
    std::vector<uint32_t> all;
    std::vector<uint32_t> fresh;
    const DifferentialOutcome o = exec.RunAndDiff(cfg, &all, &fresh);
    if (!o.ok) return ReportFailure(flags, cfg, o.detail);
    exec.seen.insert(fresh.begin(), fresh.end());
  }
  EmitStats(flags, "random", exec.execs, elapsed_s(), exec.seen.size(), 0);
  std::printf("OK: random, %zu exec(s), %zu features, seeds [%llu, %llu]\n",
              exec.execs, exec.seen.size(),
              static_cast<unsigned long long>(seed),
              static_cast<unsigned long long>(s - 1));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) return 2;

  if (flags.Has("guided")) return RunGuided(flags);
  if (flags.Has("track-coverage")) return RunRandomTracked(flags);

  const uint64_t seed = flags.U64("seed", 1);
  const int tuples = static_cast<int>(flags.Int("tuples", 2000));
  const int runs = static_cast<int>(flags.Int("runs", 1));
  const bool verbose = flags.Has("verbose");

  if (flags.Has("queries")) {
    // Replay mode: the config is exactly defaults + flags.
    DifferentialConfig cfg;
    if (!ParseWindowSpecs(flags.Str("queries"), &cfg.windows)) {
      std::fprintf(stderr, "bad --queries: %s\n",
                   flags.Str("queries").c_str());
      return 2;
    }
    cfg.aggs = SplitCommas(flags.Str("aggs", "sum"));
    for (const std::string& name : cfg.aggs) {
      if (scotty::MakeAggregation(name) == nullptr) {
        std::fprintf(stderr, "bad --aggs: unknown aggregation '%s'\n",
                     name.c_str());
        return 2;
      }
    }
    cfg.stream.seed = seed;
    cfg.stream.num_tuples = tuples;
    ApplyOverrides(flags, &cfg);
    const DifferentialOutcome o = RunDifferential(cfg);
    if (!o.ok) return ReportFailure(flags, cfg, o.detail);
    std::printf("OK: %zu comparisons (%s)\n", o.comparisons,
                cfg.ToFlags().c_str());
    return 0;
  }

  size_t total_comparisons = 0;
  for (int r = 0; r < runs; ++r) {
    const uint64_t s = seed + static_cast<uint64_t>(r);
    DifferentialConfig cfg = RandomConfig(s, tuples);
    ApplyOverrides(flags, &cfg);
    const DifferentialOutcome o = RunDifferential(cfg);
    if (!o.ok) return ReportFailure(flags, cfg, o.detail);
    total_comparisons += o.comparisons;
    if (verbose) {
      std::printf("seed %llu ok: %zu comparisons (%s)\n",
                  static_cast<unsigned long long>(s), o.comparisons,
                  cfg.ToFlags().c_str());
    }
  }
  std::printf("OK: %d run(s), %zu comparisons, seeds [%llu, %llu]\n", runs,
              total_comparisons, static_cast<unsigned long long>(seed),
              static_cast<unsigned long long>(seed + runs - 1));
  return 0;
}
