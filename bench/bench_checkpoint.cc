// Checkpoint microbenchmark (DESIGN.md §7): snapshot size and
// serialize/restore cost per windowing technique.
//
// Each technique ingests the same out-of-order sensor stream until it holds
// a steady-state amount of retained state (slices, buffered tuples, window
// context), then we measure
//   - snapshot-bytes: size of the serialized operator state,
//   - serialize-ms:   time to produce the state bytes (Writer only; the
//                     container adds a constant 28-byte header + checksum),
//   - restore-ms:     time to decode the bytes into a fresh operator.
//
// Expected shape: slicing snapshots are proportional to slice count (small),
// tuple buffer and aggregate tree carry every retained tuple, buckets sit in
// between (one partial per open bucket). Restore is within a small factor
// of serialize for every technique — both are single sequential passes.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "runtime/checkpoint.h"
#include "runtime/pipeline.h"
#include "state/serde.h"
#include "windows/session.h"
#include "windows/sliding.h"
#include "windows/tumbling.h"

namespace scotty {
namespace bench {
namespace {

std::vector<WindowPtr> CheckpointWindows() {
  return {std::make_shared<TumblingWindow>(500),
          std::make_shared<SlidingWindow>(1000, 250),
          std::make_shared<SessionWindow>(300)};
}

std::unique_ptr<WindowOperator> MakeLoaded(Technique tech,
                                           uint64_t num_tuples) {
  auto op = MakeTechnique(tech, /*stream_in_order=*/false,
                          /*allowed_lateness=*/2000, CheckpointWindows(),
                          {"sum", "median"});
  SensorStream inner(SensorStream::Football());
  OutOfOrderInjector::Options ooo;
  ooo.fraction = 0.2;
  ooo.max_delay = 2000;
  OutOfOrderInjector src(&inner, ooo);
  Tuple t;
  Time max_ts = kNoTime;
  for (uint64_t i = 0; i < num_tuples && src.Next(&t); ++i) {
    op->ProcessTuple(t);
    if (t.ts > max_ts) max_ts = t.ts;
    if ((i + 1) % 1024 == 0) {
      op->ProcessWatermark(max_ts - 2000);
      op->TakeResults();
    }
  }
  return op;
}

double MedianMs(std::vector<double>& samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

/// End-to-end ingestion throughput with checkpointing off vs on: the same
/// pipeline (one barrier per injected watermark, every 1024 tuples) either
/// skips snapshots entirely or persists one per barrier through the full
/// atomic-write protocol (serialize + checksum + temp file + fsync +
/// rename), retaining the 3 newest. The gap between the two rows is the
/// total cost of crash consistency at this cadence — dominated by fsync,
/// not by serialization (compare with the serialize-ms rows above).
void RunPipelineOverhead() {
  constexpr uint64_t kTuples = 150'000;
  constexpr int kReps = 3;
  const std::string dir =
      (std::filesystem::temp_directory_path() / "scotty_bench_ckpt").string();
  std::filesystem::create_directories(dir);
  PipelineOptions popts;  // watermark_every = 1024, the runtime default
  // Lazy slicing only: this section measures the cost of the persistence
  // protocol, which is technique-independent (serialize + fsync per
  // barrier); the per-technique serialize cost is already covered above.
  for (Technique tech : {Technique::kLazySlicing}) {
    auto make_src = [] {
      return SensorStream(SensorStream::Football());
    };
    auto make_op = [&] {
      return MakeTechnique(tech, /*stream_in_order=*/false,
                           /*allowed_lateness=*/2000, CheckpointWindows(),
                           {"sum", "median"});
    };
    std::vector<double> off_tps, on_tps;
    for (int i = 0; i < kReps; ++i) {
      {
        SensorStream src = make_src();
        auto op = make_op();
        const PipelineReport rep = RunPipeline(src, *op, kTuples, popts);
        off_tps.push_back(rep.TuplesPerSecond());
      }
      {
        SensorStream src = make_src();
        auto op = make_op();
        CheckpointCoordinator coord(
            {.directory = dir, .prefix = TechniqueName(tech), .retain = 3});
        const CheckpointedPipelineReport rep =
            RunCheckpointedPipeline(src, *op, kTuples, popts, coord);
        on_tps.push_back(rep.report.TuplesPerSecond());
      }
    }
    const double off = MedianMs(off_tps);  // medians, not actually ms here
    const double on = MedianMs(on_tps);
    EmitRow("checkpoint", std::string(TechniqueName(tech)) + "/pipeline",
            "checkpointing-off", off, "tuples/s");
    EmitRow("checkpoint", std::string(TechniqueName(tech)) + "/pipeline",
            "checkpointing-on", on, "tuples/s");
    EmitRow("checkpoint", std::string(TechniqueName(tech)) + "/pipeline",
            "overhead", off > 0 ? (off - on) / off * 100.0 : 0.0, "%");
  }
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

void Run() {
  // The football stream runs at 2 kHz and the retention horizon is
  // watermark delay + allowed lateness = 4 s, so the operators reach their
  // steady-state footprint (~8k retained tuples) after ~8k tuples. 12k
  // tuples passes that point while keeping the loading phase affordable for
  // the aggregate tree, whose out-of-order inserts re-merge holistic median
  // partials along the whole leaf-to-root path.
  constexpr uint64_t kTuples = 12'000;
  constexpr int kReps = 9;
  PrintHeader("checkpoint",
              "snapshot size and serialize/restore latency per technique");
  const std::vector<Technique> techniques = {
      Technique::kLazySlicing, Technique::kEagerSlicing,
      Technique::kTupleBuffer, Technique::kAggregateTree, Technique::kBuckets};
  for (Technique tech : techniques) {
    std::unique_ptr<WindowOperator> op = MakeLoaded(tech, kTuples);

    std::vector<double> ser_ms;
    std::vector<uint8_t> state;
    for (int i = 0; i < kReps; ++i) {
      state::Writer w;
      const auto t0 = std::chrono::steady_clock::now();
      op->SerializeState(w);
      const auto t1 = std::chrono::steady_clock::now();
      ser_ms.push_back(
          std::chrono::duration<double, std::milli>(t1 - t0).count());
      state = w.Take();
    }

    std::vector<double> res_ms;
    for (int i = 0; i < kReps; ++i) {
      auto fresh = MakeTechnique(tech, false, 2000, CheckpointWindows(),
                                 {"sum", "median"});
      state::Reader r(state);
      const auto t0 = std::chrono::steady_clock::now();
      fresh->DeserializeState(r);
      const auto t1 = std::chrono::steady_clock::now();
      if (!r.ok() || !r.AtEnd()) {
        std::fprintf(stderr, "restore failed for %s\n", TechniqueName(tech));
        std::exit(1);
      }
      res_ms.push_back(
          std::chrono::duration<double, std::milli>(t1 - t0).count());
    }

    EmitRow("checkpoint", TechniqueName(tech), "snapshot-bytes",
            static_cast<double>(state.size()), "bytes");
    EmitRow("checkpoint", TechniqueName(tech), "serialize-ms",
            MedianMs(ser_ms), "ms");
    EmitRow("checkpoint", TechniqueName(tech), "restore-ms", MedianMs(res_ms),
            "ms");
  }
  RunPipelineOverhead();
}

}  // namespace
}  // namespace bench
}  // namespace scotty

int main() {
  scotty::bench::Run();
  return 0;
}
