#ifndef SCOTTY_AGGREGATES_BASIC_H_
#define SCOTTY_AGGREGATES_BASIC_H_

#include <algorithm>
#include <string>

#include "aggregates/aggregate_function.h"

namespace scotty {

/// SUM. Distributive, commutative, invertible.
class SumAggregation : public AggregateFunction {
 public:
  Partial Lift(const Tuple& t) const override {
    return Partial{Partial::Storage{t.value}};
  }

  void Combine(Partial& into, const Partial& other) const override {
    if (other.IsIdentity()) return;
    if (into.IsIdentity()) {
      into = other;
      return;
    }
    into.Get<double>() += other.Get<double>();
  }

  Value Lower(const Partial& p) const override {
    if (p.IsIdentity()) return Value{};
    return Value{p.Get<double>()};
  }

  void Invert(Partial& from, const Partial& removed) const override {
    if (removed.IsIdentity()) return;
    from.Get<double>() -= removed.Get<double>();
  }

  bool IsInvertible() const override { return true; }
  AggClass Class() const override { return AggClass::kDistributive; }
  std::string Name() const override { return "sum"; }
};

/// SUM with the invert capability deliberately disabled. The paper's
/// "sum w/o invert" (Fig. 13): a stand-in for arbitrary not-invertible
/// aggregations whose removals always force a slice recomputation.
class SumNoInvertAggregation : public SumAggregation {
 public:
  bool IsInvertible() const override { return false; }
  std::string Name() const override { return "sum-no-invert"; }
};

/// COUNT. Distributive, commutative, invertible.
class CountAggregation : public AggregateFunction {
 public:
  Partial Lift(const Tuple&) const override {
    return Partial{Partial::Storage{int64_t{1}}};
  }

  void Combine(Partial& into, const Partial& other) const override {
    if (other.IsIdentity()) return;
    if (into.IsIdentity()) {
      into = other;
      return;
    }
    into.Get<int64_t>() += other.Get<int64_t>();
  }

  Value Lower(const Partial& p) const override {
    if (p.IsIdentity()) return Value{int64_t{0}};
    return Value{p.Get<int64_t>()};
  }

  void Invert(Partial& from, const Partial& removed) const override {
    if (removed.IsIdentity()) return;
    from.Get<int64_t>() -= removed.Get<int64_t>();
  }

  bool IsInvertible() const override { return true; }
  AggClass Class() const override { return AggClass::kDistributive; }
  std::string Name() const override { return "count"; }
};

/// MIN. Distributive, commutative, NOT invertible (removing the minimum
/// cannot be undone incrementally).
class MinAggregation : public AggregateFunction {
 public:
  Partial Lift(const Tuple& t) const override {
    return Partial{Partial::Storage{t.value}};
  }

  void Combine(Partial& into, const Partial& other) const override {
    if (other.IsIdentity()) return;
    if (into.IsIdentity()) {
      into = other;
      return;
    }
    into.Get<double>() = std::min(into.Get<double>(), other.Get<double>());
  }

  Value Lower(const Partial& p) const override {
    if (p.IsIdentity()) return Value{};
    return Value{p.Get<double>()};
  }

  bool TryRemove(Partial& from, const Partial& removed) const override {
    // Removing a value strictly greater than the minimum leaves it intact.
    if (from.IsIdentity() || removed.IsIdentity()) return true;
    return removed.Get<double>() > from.Get<double>();
  }

  AggClass Class() const override { return AggClass::kDistributive; }
  std::string Name() const override { return "min"; }
};

/// MAX. Distributive, commutative, NOT invertible.
class MaxAggregation : public AggregateFunction {
 public:
  Partial Lift(const Tuple& t) const override {
    return Partial{Partial::Storage{t.value}};
  }

  void Combine(Partial& into, const Partial& other) const override {
    if (other.IsIdentity()) return;
    if (into.IsIdentity()) {
      into = other;
      return;
    }
    into.Get<double>() = std::max(into.Get<double>(), other.Get<double>());
  }

  Value Lower(const Partial& p) const override {
    if (p.IsIdentity()) return Value{};
    return Value{p.Get<double>()};
  }

  bool TryRemove(Partial& from, const Partial& removed) const override {
    if (from.IsIdentity() || removed.IsIdentity()) return true;
    return removed.Get<double>() < from.Get<double>();
  }

  AggClass Class() const override { return AggClass::kDistributive; }
  std::string Name() const override { return "max"; }
};

}  // namespace scotty

#endif  // SCOTTY_AGGREGATES_BASIC_H_
