#ifndef SCOTTY_AGGREGATES_PARTIAL_H_
#define SCOTTY_AGGREGATES_PARTIAL_H_

#include <algorithm>
#include <cstdint>
#include <variant>
#include <vector>

#include "common/memory.h"
#include "common/time.h"
#include "state/serde.h"

namespace scotty {

/// Partial state of an average: <sum, count> (the paper's lift example).
struct AvgState {
  double sum = 0.0;
  int64_t count = 0;

  friend bool operator==(const AvgState&, const AvgState&) = default;
};

/// Partial state of a geometric mean: <sum of logs, count>.
struct GeoState {
  double log_sum = 0.0;
  int64_t count = 0;

  friend bool operator==(const GeoState&, const GeoState&) = default;
};

/// Partial state of sample standard deviation, combinable via Chan et al.'s
/// parallel variance formula: <count, mean, M2>.
struct VarState {
  int64_t count = 0;
  double mean = 0.0;
  double m2 = 0.0;

  friend bool operator==(const VarState&, const VarState&) = default;
};

/// Partial state of MinCount/MaxCount: the extremum and how often it occurs.
struct ValCountState {
  double value = 0.0;
  int64_t count = 0;  // count == 0 encodes "empty"

  friend bool operator==(const ValCountState&, const ValCountState&) = default;
};

/// Partial state of ArgMin/ArgMax: the extremum and the timestamp where it
/// (first) occurred.
struct ArgValState {
  double value = 0.0;
  Time arg = kNoTime;
  bool empty = true;

  friend bool operator==(const ArgValState&, const ArgValState&) = default;
};

/// Partial state of M4 [26]: min, max, and the chronologically first/last
/// values of the window. first/last carry their timestamps so that combine
/// stays correct for out-of-order arrival and arbitrary combine order.
struct M4State {
  double min = 0.0;
  double max = 0.0;
  double first_v = 0.0;
  Time first_t = kNoTime;
  uint64_t first_seq = 0;  // arrival order breaks timestamp ties
  double last_v = 0.0;
  Time last_t = kNoTime;
  uint64_t last_seq = 0;
  bool empty = true;

  friend bool operator==(const M4State&, const M4State&) = default;
};

/// Run-length-encoded sorted multiset of values: the holistic partial used
/// for Median/Percentile. The paper (Section 5.4.1): "we sort tuples in
/// slices to speed up succeeding merge operations and apply run length
/// encoding to save memory". Runs are sorted ascending by value.
struct SortedRuns {
  struct Run {
    double value = 0.0;
    int64_t count = 0;

    friend bool operator==(const Run&, const Run&) = default;
  };

  std::vector<Run> runs;
  int64_t total = 0;

  friend bool operator==(const SortedRuns&, const SortedRuns&) = default;

  /// Inserts one occurrence of `v`, keeping runs sorted and merged.
  void Insert(double v) {
    auto it = std::lower_bound(
        runs.begin(), runs.end(), v,
        [](const Run& r, double x) { return r.value < x; });
    if (it != runs.end() && it->value == v) {
      ++it->count;
    } else {
      runs.insert(it, Run{v, 1});
    }
    ++total;
  }

  /// Removes one occurrence of `v`. Returns false if `v` is not present.
  bool Remove(double v) {
    auto it = std::lower_bound(
        runs.begin(), runs.end(), v,
        [](const Run& r, double x) { return r.value < x; });
    if (it == runs.end() || it->value != v) return false;
    if (--it->count == 0) runs.erase(it);
    --total;
    return true;
  }

  /// Merges `other` into this (linear two-way merge of sorted run lists).
  void Merge(const SortedRuns& other) {
    std::vector<Run> merged;
    merged.reserve(runs.size() + other.runs.size());
    size_t i = 0;
    size_t j = 0;
    while (i < runs.size() && j < other.runs.size()) {
      if (runs[i].value < other.runs[j].value) {
        merged.push_back(runs[i++]);
      } else if (other.runs[j].value < runs[i].value) {
        merged.push_back(other.runs[j++]);
      } else {
        merged.push_back(Run{runs[i].value, runs[i].count + other.runs[j].count});
        ++i;
        ++j;
      }
    }
    while (i < runs.size()) merged.push_back(runs[i++]);
    while (j < other.runs.size()) merged.push_back(other.runs[j++]);
    runs = std::move(merged);
    total += other.total;
  }

  /// Value at zero-based rank `k` in sorted order (k < total).
  double ValueAtRank(int64_t k) const {
    for (const Run& r : runs) {
      if (k < r.count) return r.value;
      k -= r.count;
    }
    return 0.0;  // unreachable for valid k
  }
};

/// Partial state of the non-commutative Concat aggregation: the sequence of
/// values in aggregation order. Used to exercise the paper's
/// "non-commutative aggregation forces tuple storage on OOO streams" path.
struct SeqState {
  std::vector<double> seq;

  friend bool operator==(const SeqState&, const SeqState&) = default;
};

/// A partial aggregate. A closed variant over the state types used by the
/// built-in aggregations; user-defined aggregations reuse one of these
/// shapes (most custom algebraic functions fit AvgState/VarState-like pairs,
/// custom holistic ones fit SortedRuns, order-dependent ones fit SeqState).
///
/// std::monostate is the neutral element ("no tuples yet"): every
/// AggregateFunction must treat it as identity in Combine.
class Partial {
 public:
  using Storage =
      std::variant<std::monostate, int64_t, double, AvgState, GeoState,
                   VarState, ValCountState, ArgValState, M4State, SortedRuns,
                   SeqState>;

  Partial() = default;
  explicit Partial(Storage s) : v_(std::move(s)) {}

  bool IsIdentity() const { return std::holds_alternative<std::monostate>(v_); }

  template <typename T>
  bool Holds() const {
    return std::holds_alternative<T>(v_);
  }

  template <typename T>
  T& Get() {
    return std::get<T>(v_);
  }

  template <typename T>
  const T& Get() const {
    return std::get<T>(v_);
  }

  template <typename T>
  void Set(T value) {
    v_ = std::move(value);
  }

  friend bool operator==(const Partial&, const Partial&) = default;

  /// Bytes of heap storage beyond the fixed variant slot (holistic runs,
  /// Concat sequences). Used by the memory experiments.
  size_t DynamicBytes() const {
    if (const auto* runs = std::get_if<SortedRuns>(&v_)) {
      return runs->runs.capacity() * sizeof(SortedRuns::Run);
    }
    if (const auto* seq = std::get_if<SeqState>(&v_)) {
      return seq->seq.capacity() * sizeof(double);
    }
    return 0;
  }

  /// Total accounted bytes for this partial (fixed slot + heap).
  size_t TotalBytes() const { return MemoryModel::kPartialBytes + DynamicBytes(); }

  /// Snapshot encoding: one byte of variant index, then the alternative's
  /// fields. Doubles travel as raw bits (state/serde.h), so a restored
  /// partial compares == to the original — the checkpoint bit-identity
  /// contract. The variant is closed, so this is the single place that
  /// knows every partial shape; aggregate functions stay serialization-free.
  void Serialize(state::Writer& w) const {
    w.U8(static_cast<uint8_t>(v_.index()));
    if (const auto* i = std::get_if<int64_t>(&v_)) {
      w.I64(*i);
    } else if (const auto* d = std::get_if<double>(&v_)) {
      w.F64(*d);
    } else if (const auto* a = std::get_if<AvgState>(&v_)) {
      w.F64(a->sum);
      w.I64(a->count);
    } else if (const auto* g = std::get_if<GeoState>(&v_)) {
      w.F64(g->log_sum);
      w.I64(g->count);
    } else if (const auto* s = std::get_if<VarState>(&v_)) {
      w.I64(s->count);
      w.F64(s->mean);
      w.F64(s->m2);
    } else if (const auto* vc = std::get_if<ValCountState>(&v_)) {
      w.F64(vc->value);
      w.I64(vc->count);
    } else if (const auto* av = std::get_if<ArgValState>(&v_)) {
      w.F64(av->value);
      w.I64(av->arg);
      w.Bool(av->empty);
    } else if (const auto* m = std::get_if<M4State>(&v_)) {
      w.F64(m->min);
      w.F64(m->max);
      w.F64(m->first_v);
      w.I64(m->first_t);
      w.U64(m->first_seq);
      w.F64(m->last_v);
      w.I64(m->last_t);
      w.U64(m->last_seq);
      w.Bool(m->empty);
    } else if (const auto* runs = std::get_if<SortedRuns>(&v_)) {
      w.I64(runs->total);
      w.U64(runs->runs.size());
      for (const SortedRuns::Run& run : runs->runs) {
        w.F64(run.value);
        w.I64(run.count);
      }
    } else if (const auto* seq = std::get_if<SeqState>(&v_)) {
      w.U64(seq->seq.size());
      for (double x : seq->seq) w.F64(x);
    }
    // std::monostate: the index byte alone suffices.
  }

  void Deserialize(state::Reader& r) {
    switch (r.U8()) {
      case 0:
        v_ = std::monostate{};
        break;
      case 1:
        v_ = r.I64();
        break;
      case 2:
        v_ = r.F64();
        break;
      case 3: {
        AvgState a;
        a.sum = r.F64();
        a.count = r.I64();
        v_ = a;
        break;
      }
      case 4: {
        GeoState g;
        g.log_sum = r.F64();
        g.count = r.I64();
        v_ = g;
        break;
      }
      case 5: {
        VarState s;
        s.count = r.I64();
        s.mean = r.F64();
        s.m2 = r.F64();
        v_ = s;
        break;
      }
      case 6: {
        ValCountState vc;
        vc.value = r.F64();
        vc.count = r.I64();
        v_ = vc;
        break;
      }
      case 7: {
        ArgValState av;
        av.value = r.F64();
        av.arg = r.I64();
        av.empty = r.Bool();
        v_ = av;
        break;
      }
      case 8: {
        M4State m;
        m.min = r.F64();
        m.max = r.F64();
        m.first_v = r.F64();
        m.first_t = r.I64();
        m.first_seq = r.U64();
        m.last_v = r.F64();
        m.last_t = r.I64();
        m.last_seq = r.U64();
        m.empty = r.Bool();
        v_ = m;
        break;
      }
      case 9: {
        SortedRuns runs;
        runs.total = r.I64();
        const uint64_t n = r.U64();
        if (n > r.remaining()) {  // each run needs >= 1 byte; reject early
          r.Fail();
          break;
        }
        runs.runs.reserve(static_cast<size_t>(n));
        for (uint64_t i = 0; i < n && r.ok(); ++i) {
          SortedRuns::Run run;
          run.value = r.F64();
          run.count = r.I64();
          runs.runs.push_back(run);
        }
        v_ = std::move(runs);
        break;
      }
      case 10: {
        SeqState seq;
        const uint64_t n = r.U64();
        if (n > r.remaining()) {
          r.Fail();
          break;
        }
        seq.seq.reserve(static_cast<size_t>(n));
        for (uint64_t i = 0; i < n && r.ok(); ++i) seq.seq.push_back(r.F64());
        v_ = std::move(seq);
        break;
      }
      default:
        r.Fail();
        break;
    }
  }

 private:
  Storage v_;
};

}  // namespace scotty

#endif  // SCOTTY_AGGREGATES_PARTIAL_H_
