// Batched vs tuple-at-a-time ingestion on the Figure-8 workload.
//
// Setup: the in-order football stream with concurrent tumbling-window sum
// queries (paper Section 6.2.1) — the configuration where per-tuple overhead
// dominates, since slicing reduces window maintenance to one partial-
// aggregate update per tuple. The batched path amortizes virtual dispatch,
// workload re-checks, and slice lookups across contiguous tuple runs and
// folds values through the devirtualized LiftCombineBatch kernels.
//
// Figures:
//   throughput_batched   inline-generation rows, per store mode (lazy/eager):
//     tuple-at-a-time         ProcessTuple per tuple (the pre-batching loop)
//     batch-{64..4096}        ProcessTupleBatch over blocks of that size
//     speedup-batch-256       batch-256 tuples/s over tuple-at-a-time
//   throughput_soa       pre-generated replay rows (see bench_util.h for the
//     methodology note), per store mode and layout:
//     {aos,soa}-batch-{64..4096}  row-major replay vs columnar SoA replay
//     soa-vs-aos-batch-1024       columnar speedup at the staging default
//   throughput_parallel_preagg  (--parallel) shared-window executor with
//     thread-local slice pre-aggregation, 1..4 workers. NOTE: scaling here
//     is only meaningful on a multi-core host; see EXPERIMENTS.md.
//
// Flags: --layout=aos|soa restricts the replay figure to one layout,
// --parallel adds the worker sweep. Results are appended to
// BENCH_throughput.json (see bench_json.h).

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "core/general_slicing_operator.h"
#include "runtime/parallel_executor.h"

namespace scotty {
namespace bench {
namespace {

// The slicing hot loop sustains tens of millions of tuples/s, so the
// Figure-8 budget of 3M tuples finishes in well under 0.1s and is too noisy
// for a recorded speedup baseline; give each point up to 20M tuples / 1s.
constexpr uint64_t kMaxTuples = 20'000'000;
constexpr double kMaxSeconds = 1.0;

// Replay streams are materialized up front (~40 bytes/tuple AoS, ~33 SoA):
// 4M tuples keeps the resident buffer under 200 MB while still giving the
// >100M tuples/s columnar path tens of milliseconds per pass; passes repeat
// until kReplayMinSeconds of measurement accumulate and the best pass wins.
constexpr size_t kReplayTuples = 4'000'000;
constexpr double kReplayMinSeconds = 0.3;
constexpr int kReplayMaxPasses = 6;

std::unique_ptr<WindowOperator> MakeOp(Technique tech, int windows) {
  return MakeTechnique(tech, /*stream_in_order=*/true, /*allowed_lateness=*/0,
                       DashboardTumblingWindows(windows), {"sum"});
}

void Run() {
  PrintHeader("throughput_batched",
              "batched vs per-tuple ingestion, in-order sum/tumbling");
  const std::vector<int> window_counts = {1, 10, 100, 1000};
  const std::vector<size_t> batch_sizes = {64, 256, 1024, 2048, 4096};
  for (Technique tech : {Technique::kLazySlicing, Technique::kEagerSlicing}) {
    const std::string name = TechniqueName(tech);
    for (int n : window_counts) {
      SensorStream src(SensorStream::Football());
      auto base_op = MakeOp(tech, n);
      // In-order streams self-trigger; no watermarks needed.
      const ThroughputResult base =
          MeasureThroughput(*base_op, src, kMaxTuples, kMaxSeconds,
                            /*wm_every=*/0);
      EmitRow("throughput_batched", name + "/tuple-at-a-time",
              std::to_string(n), base.TuplesPerSecond(), "tuples/s");
      double batch256 = 0.0;
      for (size_t bs : batch_sizes) {
        SensorStream bsrc(SensorStream::Football());
        auto op = MakeOp(tech, n);
        const ThroughputResult r = MeasureThroughputBatched(
            *op, bsrc, kMaxTuples, kMaxSeconds, bs, /*wm_every=*/0);
        EmitRow("throughput_batched", name + "/batch-" + std::to_string(bs),
                std::to_string(n), r.TuplesPerSecond(), "tuples/s");
        if (bs == 256) batch256 = r.TuplesPerSecond();
      }
      if (base.TuplesPerSecond() > 0) {
        EmitRow("throughput_batched", name + "/speedup-batch-256",
                std::to_string(n), batch256 / base.TuplesPerSecond(), "x");
      }
    }
  }
}

/// Best-of-N replay: fresh operator per pass, pass time accumulates until
/// the budget is spent, the fastest pass is reported (standard microbench
/// practice — the best pass has the least scheduler/cache interference).
template <typename MeasureOnce>
double BestReplayRate(const MeasureOnce& measure) {
  double best = 0.0;
  double total_s = 0.0;
  for (int pass = 0; pass < kReplayMaxPasses; ++pass) {
    const ThroughputResult r = measure();
    best = std::max(best, r.TuplesPerSecond());
    total_s += r.seconds;
    if (pass > 0 && total_s > kReplayMinSeconds) break;
  }
  return best;
}

void RunSoA(const std::string& layout) {
  PrintHeader("throughput_soa",
              "pre-generated replay, aos (row blocks) vs soa (column views)");
  // Materialize once; both layouts replay the identical stream.
  TupleBatchSoA soa(kReplayTuples);
  std::vector<Tuple> aos;
  {
    SensorStream src(SensorStream::Football());
    Tuple t;
    if (layout != "soa") aos.reserve(kReplayTuples);
    for (size_t i = 0; i < kReplayTuples && src.Next(&t); ++i) {
      soa.PushBack(t);
      if (layout != "soa") aos.push_back(t);
    }
  }
  const std::vector<int> window_counts = {1, 10, 100};
  const std::vector<size_t> batch_sizes = {64, 256, 1024, 2048, 4096};
  for (Technique tech : {Technique::kLazySlicing, Technique::kEagerSlicing}) {
    const std::string name = TechniqueName(tech);
    for (int n : window_counts) {
      double aos1024 = 0.0;
      double soa1024 = 0.0;
      for (size_t bs : batch_sizes) {
        if (layout != "soa") {
          const double rate = BestReplayRate([&] {
            auto op = MakeOp(tech, n);
            return MeasureThroughputReplayAoS(*op, aos, bs);
          });
          EmitRow("throughput_soa", name + "/aos-batch-" + std::to_string(bs),
                  std::to_string(n), rate, "tuples/s");
          if (bs == 1024) aos1024 = rate;
        }
        if (layout != "aos") {
          const double rate = BestReplayRate([&] {
            auto op = MakeOp(tech, n);
            return MeasureThroughputReplaySoA(*op, soa, bs);
          });
          EmitRow("throughput_soa", name + "/soa-batch-" + std::to_string(bs),
                  std::to_string(n), rate, "tuples/s");
          if (bs == 1024) soa1024 = rate;
        }
      }
      if (aos1024 > 0 && soa1024 > 0) {
        EmitRow("throughput_soa", name + "/soa-vs-aos-batch-1024",
                std::to_string(n), soa1024 / aos1024, "x");
      }
    }
  }
}

void RunParallel() {
  PrintHeader("throughput_parallel_preagg",
              "shared-window executor, thread-local slice pre-aggregation");
  // One shared 1000ms tumbling sum window; the pre-aggregation slice length
  // (250ms) divides it, so local bucket edges line up with window edges.
  TupleBatchSoA soa(kReplayTuples);
  {
    SensorStream src(SensorStream::Football());
    Tuple t;
    for (size_t i = 0; i < kReplayTuples && src.Next(&t); ++i) soa.PushBack(t);
  }
  const Time max_ts = soa.ts()[soa.size() - 1];
  for (size_t workers = 1; workers <= 4; ++workers) {
    ParallelExecutor::Options opts;
    opts.shared_preagg = true;
    opts.preagg_slice_len = 250;
    opts.batch_size = 1024;
    ParallelExecutor exec(
        workers,
        [] {
          GeneralSlicingOperator::Options o;
          o.stream_in_order = false;
          auto op = std::make_unique<GeneralSlicingOperator>(o);
          op->AddAggregation(MakeAggregation("sum"));
          AddWindows(*op, DashboardTumblingWindows(1));
          return std::unique_ptr<WindowOperator>(std::move(op));
        },
        opts);
    exec.Start();
    const auto start = std::chrono::steady_clock::now();
    constexpr size_t kChunk = 4096;
    constexpr size_t kWmEvery = 1 << 18;  // ~262k tuples between watermarks
    size_t since_wm = 0;
    for (size_t i = 0; i < soa.size();) {
      const size_t len = std::min(kChunk, soa.size() - i);
      exec.PushColumns(soa.Subview(i, len));
      i += len;
      since_wm += len;
      if (since_wm >= kWmEvery) {
        exec.PushWatermark(soa.ts()[i - 1] - 2000);
        since_wm = 0;
      }
    }
    exec.PushWatermark(max_ts);
    exec.Finish();
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    const double rate = secs > 0 ? static_cast<double>(soa.size()) / secs : 0;
    EmitRow("throughput_parallel_preagg", "workers", std::to_string(workers),
            rate, "tuples/s");
  }
}

}  // namespace
}  // namespace bench
}  // namespace scotty

int main(int argc, char** argv) {
  std::string layout = "both";
  bool parallel = false;
  bool base = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--layout=", 9) == 0) {
      layout = argv[i] + 9;
    } else if (std::strcmp(argv[i], "--parallel") == 0) {
      parallel = true;
      base = false;  // --parallel alone runs only the worker sweep
    } else if (std::strcmp(argv[i], "--all") == 0) {
      parallel = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--layout=aos|soa] [--parallel] [--all]\n",
                   argv[0]);
      return 1;
    }
  }
  if (base) {
    scotty::bench::Run();
    scotty::bench::RunSoA(layout);
  }
  if (parallel) scotty::bench::RunParallel();
  return 0;
}
