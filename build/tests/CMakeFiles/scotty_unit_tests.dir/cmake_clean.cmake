file(REMOVE_RECURSE
  "CMakeFiles/scotty_unit_tests.dir/aggregates_test.cc.o"
  "CMakeFiles/scotty_unit_tests.dir/aggregates_test.cc.o.d"
  "CMakeFiles/scotty_unit_tests.dir/datagen_test.cc.o"
  "CMakeFiles/scotty_unit_tests.dir/datagen_test.cc.o.d"
  "CMakeFiles/scotty_unit_tests.dir/flat_fat_test.cc.o"
  "CMakeFiles/scotty_unit_tests.dir/flat_fat_test.cc.o.d"
  "CMakeFiles/scotty_unit_tests.dir/slice_test.cc.o"
  "CMakeFiles/scotty_unit_tests.dir/slice_test.cc.o.d"
  "CMakeFiles/scotty_unit_tests.dir/try_remove_test.cc.o"
  "CMakeFiles/scotty_unit_tests.dir/try_remove_test.cc.o.d"
  "CMakeFiles/scotty_unit_tests.dir/value_test.cc.o"
  "CMakeFiles/scotty_unit_tests.dir/value_test.cc.o.d"
  "CMakeFiles/scotty_unit_tests.dir/windows_test.cc.o"
  "CMakeFiles/scotty_unit_tests.dir/windows_test.cc.o.d"
  "CMakeFiles/scotty_unit_tests.dir/workload_test.cc.o"
  "CMakeFiles/scotty_unit_tests.dir/workload_test.cc.o.d"
  "scotty_unit_tests"
  "scotty_unit_tests.pdb"
  "scotty_unit_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scotty_unit_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
