// Tests for threshold frames (data-driven windows) and the new positional /
// count-distinct aggregations.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "aggregates/positional.h"
#include "aggregates/registry.h"
#include "core/general_slicing_operator.h"
#include "tests/test_util.h"
#include "windows/frames.h"
#include "windows/tumbling.h"

namespace scotty {
namespace {

using testutil::FinalResults;
using testutil::Num;
using testutil::RunStream;
using testutil::T;

class Collector : public WindowCallback {
 public:
  void OnWindow(Time start, Time end) override { wins.push_back({start, end}); }
  std::vector<std::pair<Time, Time>> wins;
};

GeneralSlicingOperator::Options Opts(bool in_order, Time lateness = 1000) {
  GeneralSlicingOperator::Options o;
  o.stream_in_order = in_order;
  o.allowed_lateness = lateness;
  return o;
}

// --------------------------- Window state machine ---------------------------

TEST(ThresholdFrames, FramesSpanQualifyingRuns) {
  ThresholdFrameWindow w(10.0);
  w.ProcessContext(T(1, 5, 0));    // below: break
  w.ProcessContext(T(2, 12, 1));   // frame opens at 2
  w.ProcessContext(T(3, 15, 2));
  w.ProcessContext(T(4, 3, 3));    // closes frame at 4
  w.ProcessContext(T(6, 20, 4));   // second frame opens
  w.ProcessContext(T(8, 1, 5));    // closes at 8
  Collector c;
  w.TriggerWindows(c, 0, 10);
  const std::vector<std::pair<Time, Time>> expected = {{2, 4}, {6, 8}};
  EXPECT_EQ(c.wins, expected);
}

TEST(ThresholdFrames, OpenFrameNotTriggered) {
  ThresholdFrameWindow w(10.0);
  w.ProcessContext(T(2, 12, 0));
  w.ProcessContext(T(5, 14, 1));
  Collector c;
  w.TriggerWindows(c, 0, 100);
  EXPECT_TRUE(c.wins.empty());  // no break yet: the frame may still extend
  EXPECT_EQ(w.EvictionSafePoint(100), 2);  // retain from the open frame
}

TEST(ThresholdFrames, InOrderEdgesAreCheapCuts) {
  ThresholdFrameWindow w(10.0);
  ContextModifications open = w.ProcessContext(T(2, 12, 0));
  ASSERT_EQ(open.split_edges.size(), 1u);
  EXPECT_EQ(open.split_edges[0], 2);
  ContextModifications mid = w.ProcessContext(T(3, 13, 1));
  EXPECT_TRUE(mid.split_edges.empty());  // interior tuple: no edge
  ContextModifications close = w.ProcessContext(T(5, 1, 2));
  ASSERT_EQ(close.split_edges.size(), 1u);
  EXPECT_EQ(close.split_edges[0], 5);
}

TEST(ThresholdFrames, EdgePredicates) {
  ThresholdFrameWindow w(10.0);
  w.ProcessContext(T(2, 12, 0));
  w.ProcessContext(T(3, 13, 1));
  w.ProcessContext(T(5, 1, 2));
  EXPECT_TRUE(w.IsWindowEdge(2));   // frame start
  EXPECT_FALSE(w.IsWindowEdge(3));  // interior
  EXPECT_TRUE(w.IsWindowEdge(5));   // frame end (break after quals)
  EXPECT_EQ(w.LastEdgeAtOrBefore(4), 3);  // conservative: latest event
  EXPECT_EQ(w.GetNextEdge(0), kMaxTime);  // edges are data-driven
}

TEST(ThresholdFrames, OutOfOrderBreakSplitsFrame) {
  ThresholdFrameWindow w(10.0);
  w.ProcessContext(T(2, 12, 0));
  w.ProcessContext(T(4, 13, 1));
  w.ProcessContext(T(6, 14, 2));
  w.ProcessContext(T(8, 1, 3));  // closes [2, 8)
  ContextModifications mods = w.ProcessContext(T(5, 2, 4));  // OOO break
  ASSERT_EQ(mods.split_edges.size(), 1u);
  EXPECT_EQ(mods.split_edges[0], 5);
  Collector c;
  w.TriggerWindows(c, 0, 10);
  const std::vector<std::pair<Time, Time>> expected = {{2, 5}, {6, 8}};
  EXPECT_EQ(c.wins, expected);
}

// --------------------------- End-to-end in the operator ---------------------------

TEST(ThresholdFrames, InOrderOperatorAggregatesPerFrame) {
  GeneralSlicingOperator op(Opts(true));
  op.AddAggregation(MakeAggregation("sum"));
  op.AddWindow(std::make_shared<ThresholdFrameWindow>(10.0));
  auto fin = FinalResults(RunStream(
      op,
      {T(1, 5), T(2, 12), T(3, 15), T(4, 3), T(6, 20), T(7, 11), T(8, 1)},
      20));
  // Frame [2,4): 12 + 15; frame [6,8): 20 + 11. Break tuples excluded.
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 2, 4}]), 27.0);
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 6, 8}]), 31.0);
  EXPECT_FALSE(op.queries().StoreTuples());  // in-order FCF: no retention
}

TEST(ThresholdFrames, OutOfOrderBreakSplitsSliceWithRecompute) {
  GeneralSlicingOperator op(Opts(false));
  op.AddAggregation(MakeAggregation("sum"));
  op.AddWindow(std::make_shared<ThresholdFrameWindow>(10.0));
  EXPECT_TRUE(op.queries().StoreTuples());  // FCF + OOO
  std::vector<Tuple> tuples = {T(2, 12), T(4, 13), T(6, 14), T(8, 1),
                               T(5, 2)};  // OOO break at 5
  auto fin = FinalResults(RunStream(op, tuples, 20));
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 2, 5}]), 12.0 + 13.0);
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 6, 8}]), 14.0);
  EXPECT_GT(op.stats().slice_splits, 0u);
}

// --------------------------- New aggregations ---------------------------

TEST(FirstLast, ResolveByEventTimeNotArrival) {
  FirstAggregation first;
  LastAggregation last;
  Partial f;
  Partial l;
  // Arrival order differs from event-time order.
  for (const Tuple& t : {T(5, 50, 0), T(1, 10, 1), T(9, 90, 2), T(3, 30, 3)}) {
    first.Combine(f, first.Lift(t));
    last.Combine(l, last.Lift(t));
  }
  EXPECT_DOUBLE_EQ(first.Lower(f).AsDouble(), 10.0);
  EXPECT_DOUBLE_EQ(last.Lower(l).AsDouble(), 90.0);
}

TEST(FirstLast, TryRemoveFastPath) {
  FirstAggregation first;
  Partial acc;
  for (const Tuple& t : {T(1, 10, 0), T(5, 50, 1)}) {
    first.Combine(acc, first.Lift(t));
  }
  EXPECT_TRUE(first.TryRemove(acc, first.Lift(T(5, 50, 1))));  // not first
  EXPECT_FALSE(first.TryRemove(acc, first.Lift(T(1, 10, 0))));
}

TEST(CountDistinct, CountsDistinctValues) {
  AggregateFunctionPtr cd = MakeAggregation("count-distinct");
  Partial acc;
  for (const Tuple& t : {T(1, 7.0), T(2, 3.0), T(3, 7.0), T(4, 5.0)}) {
    cd->Combine(acc, cd->Lift(t));
  }
  EXPECT_EQ(cd->Lower(acc).AsInt(), 3);
  // Invert one occurrence of a duplicated value: still 3 distinct.
  cd->Invert(acc, cd->Lift(T(1, 7.0)));
  EXPECT_EQ(cd->Lower(acc).AsInt(), 3);
  // Remove the remaining 7: now 2.
  cd->Invert(acc, cd->Lift(T(3, 7.0)));
  EXPECT_EQ(cd->Lower(acc).AsInt(), 2);
}

TEST(CountDistinct, WorksOverTumblingWindows) {
  GeneralSlicingOperator op(Opts(true));
  op.AddAggregation(MakeAggregation("count-distinct"));
  op.AddWindow(std::make_shared<TumblingWindow>(10));
  auto fin = FinalResults(RunStream(
      op, {T(1, 5), T(3, 5), T(7, 9), T(12, 1)}, 20));
  EXPECT_EQ((fin[{0, 0, 0, 10}]).AsInt(), 2);
}

TEST(FirstLast, WorkOverSlicedWindowsWithOoo) {
  GeneralSlicingOperator op(Opts(false));
  const int first = op.AddAggregation(MakeAggregation("first"));
  const int last = op.AddAggregation(MakeAggregation("last"));
  op.AddWindow(std::make_shared<TumblingWindow>(10));
  auto fin = FinalResults(RunStream(
      op, {T(5, 50), T(12, 120), T(2, 20), T(8, 80)}, 20));
  EXPECT_DOUBLE_EQ(Num(fin[{0, first, 0, 10}]), 20.0);
  EXPECT_DOUBLE_EQ(Num(fin[{0, last, 0, 10}]), 80.0);
}

}  // namespace
}  // namespace scotty
