// Tests for user-defined context-free windows (the paper's extension point)
// and the fluent QueryBuilder front-end.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "aggregates/registry.h"
#include "baselines/pairs.h"
#include "core/query_builder.h"
#include "tests/test_util.h"
#include "windows/custom.h"

namespace scotty {
namespace {

using testutil::FinalResults;
using testutil::Num;
using testutil::RunStream;
using testutil::T;

class Collector : public WindowCallback {
 public:
  void OnWindow(Time start, Time end) override { wins.push_back({start, end}); }
  std::vector<std::pair<Time, Time>> wins;
};

/// Irregular "billing cycle" edges: months of alternating length 30 / 31.
Time BillingNextEdge(Time t) {
  // Edges at 0, 30, 61, 91, 122, ... (pairs of 30+31 days).
  const Time cycle = 61;
  const Time base = (t >= 0 ? t / cycle : -1) * cycle;
  if (t < base + 30 && t >= base) return base + 30;
  if (t < base + 61) return base + 61;
  return base + cycle + 30;
}

TEST(CustomWindow, EdgeDerivation) {
  CustomContextFreeWindow w("billing", BillingNextEdge, /*max_extent=*/31);
  EXPECT_EQ(w.GetNextEdge(0), 30);
  EXPECT_EQ(w.GetNextEdge(30), 61);
  EXPECT_EQ(w.GetNextEdge(45), 61);
  EXPECT_EQ(w.GetNextEdge(61), 91);
  EXPECT_EQ(w.LastEdgeAtOrBefore(29), 0);
  EXPECT_EQ(w.LastEdgeAtOrBefore(30), 30);
  EXPECT_EQ(w.LastEdgeAtOrBefore(90), 61);
  EXPECT_TRUE(w.IsWindowEdge(61));
  EXPECT_FALSE(w.IsWindowEdge(60));
}

TEST(CustomWindow, TriggerProducesIrregularWindows) {
  CustomContextFreeWindow w("billing", BillingNextEdge, 31);
  Collector c;
  w.TriggerWindows(c, 0, 130);
  const std::vector<std::pair<Time, Time>> expected = {
      {0, 30}, {30, 61}, {61, 91}, {91, 122}};
  EXPECT_EQ(c.wins, expected);
}

TEST(CustomWindow, WorksInsideGeneralSlicing) {
  GeneralSlicingOperator::Options o;
  o.stream_in_order = true;
  GeneralSlicingOperator op(o);
  op.AddAggregation(MakeAggregation("sum"));
  op.AddWindow(std::make_shared<CustomContextFreeWindow>(
      "billing", BillingNextEdge, 31));
  std::vector<Tuple> tuples;
  for (int day = 0; day < 130; ++day) tuples.push_back(T(day, 1.0));
  auto fin = FinalResults(RunStream(op, tuples, 130));
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 0, 30}]), 30.0);
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 30, 61}]), 31.0);
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 61, 91}]), 30.0);
}

TEST(CustomWindow, CuttySupportsUserDefinedWindows) {
  // The Cutty baseline's defining feature [10]: user-defined CF windows.
  CuttyOperator op;
  op.AddAggregation(MakeAggregation("sum"));
  op.AddWindow(std::make_shared<CustomContextFreeWindow>(
      "billing", BillingNextEdge, 31));
  std::vector<Tuple> tuples;
  for (int day = 0; day < 100; ++day) tuples.push_back(T(day, 1.0));
  auto fin = FinalResults(RunStream(op, tuples, 100));
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 0, 30}]), 30.0);
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 30, 61}]), 31.0);
}

TEST(QueryBuilder, BuildsCompleteOperator) {
  auto op = QueryBuilder()
                .OutOfOrder(/*allowed_lateness=*/100)
                .Eager()
                .Aggregate("sum")
                .Aggregate("median")
                .Tumbling(10)
                .Session(5)
                .Build();
  ASSERT_NE(op, nullptr);
  EXPECT_EQ(op->queries().aggs.size(), 2u);
  EXPECT_EQ(op->queries().windows.size(), 2u);
  EXPECT_EQ(op->Name(), "general-slicing-eager");

  auto fin = FinalResults(RunStream(*op, {T(1, 1), T(3, 2), T(20, 4)}, 40));
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 0, 10}]), 3.0);   // tumbling sum
  EXPECT_DOUBLE_EQ(Num(fin[{1, 0, 1, 8}]), 3.0);    // session sum
  // Session median: nearest-rank median of {1, 2} is the 1st smallest.
  EXPECT_DOUBLE_EQ(Num(fin[{1, 1, 1, 8}]), 1.0);
}

TEST(QueryBuilder, InOrderSelfTriggering) {
  auto op = QueryBuilder().InOrder().Aggregate("count").Tumbling(10).Build();
  op->ProcessTuple(T(1, 1, 0));
  op->ProcessTuple(T(12, 1, 1));
  const auto results = op->TakeResults();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].value.AsInt(), 1);
}

TEST(QueryBuilder, SupportsAllWindowKinds) {
  auto op = QueryBuilder()
                .OutOfOrder(1000)
                .Aggregate("sum")
                .Tumbling(10)
                .Sliding(20, 5)
                .Session(7)
                .Punctuated()
                .Frames(3.0)
                .LastNEveryT(3, 50)
                .Tumbling(4, Measure::kCount)
                .Window(std::make_shared<CustomContextFreeWindow>(
                    "billing", BillingNextEdge, 31))
                .Build();
  EXPECT_EQ(op->queries().windows.size(), 8u);
  // FCA window + OOO stream: the decision tree must retain tuples.
  EXPECT_TRUE(op->queries().StoreTuples());
  EXPECT_TRUE(op->queries().splits_possible);
  // Smoke: stream a few tuples through the full query mix.
  uint64_t seq = 0;
  for (int i = 0; i < 200; ++i) {
    op->ProcessTuple(T(i, static_cast<double>(i % 5), seq++));
  }
  op->ProcessWatermark(200);
  EXPECT_GT(op->TakeResults().size(), 0u);
}

TEST(QueryBuilder, ReusableForFleetsOfOperators) {
  QueryBuilder builder;
  builder.OutOfOrder(50).Aggregate("sum").Tumbling(10);
  auto a = builder.Build();
  auto b = builder.Build();
  // Window objects are shared per Build; CF windows are stateless, so two
  // operators built from one builder stay independent.
  a->ProcessTuple(T(1, 1, 0));
  b->ProcessTuple(T(2, 2, 0));
  a->ProcessWatermark(20);
  b->ProcessWatermark(20);
  auto fa = FinalResults(a->TakeResults());
  auto fb = FinalResults(b->TakeResults());
  EXPECT_DOUBLE_EQ(Num(fa[{0, 0, 0, 10}]), 1.0);
  EXPECT_DOUBLE_EQ(Num(fb[{0, 0, 0, 10}]), 2.0);
}

}  // namespace
}  // namespace scotty
