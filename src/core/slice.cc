#include "core/slice.h"

#include <algorithm>
#include <cassert>

#include "state/serde_types.h"

namespace scotty {

namespace {

bool TupleLess(const Tuple& a, const Tuple& b) {
  if (a.ts != b.ts) return a.ts < b.ts;
  return a.seq < b.seq;
}

}  // namespace

void Slice::AddTuple(const Tuple& t,
                     const std::vector<AggregateFunctionPtr>& fns,
                     bool store_tuple) {
  assert(fns.size() == aggs_.size());
  dirty_ = true;
  if (track_last_ts_) TrackTuple(t, fns);
  for (size_t i = 0; i < fns.size(); ++i) {
    fns[i]->Combine(aggs_[i], fns[i]->Lift(t));
  }
  if (store_tuple) RawInsertSorted(t);
  NoteTuple(t);
}

void Slice::TrackTuple(const Tuple& t,
                       const std::vector<AggregateFunctionPtr>& fns) {
  if (last_aggs_.size() != fns.size()) {
    last_aggs_.assign(fns.size(), Partial{});
    prefix_aggs_.assign(fns.size(), Partial{});
  }
  if (empty() || t.ts > t_last_) {
    // The t_last group closes: fold it into the prefix and start a new one.
    for (size_t i = 0; i < fns.size(); ++i) {
      fns[i]->Combine(prefix_aggs_[i], last_aggs_[i]);
      last_aggs_[i] = fns[i]->Lift(t);
    }
    prev_ts_ = empty() ? kNoTime : t_last_;
    last_count_ = 1;
  } else if (t.ts == t_last_) {
    for (size_t i = 0; i < fns.size(); ++i) {
      fns[i]->Combine(last_aggs_[i], fns[i]->Lift(t));
    }
    ++last_count_;
  } else {
    // Out-of-order tuple: the prefix/last decomposition no longer holds.
    DisableTracking();
  }
}

void Slice::AddTupleBatch(std::span<const Tuple> batch,
                          const std::vector<AggregateFunctionPtr>& fns,
                          bool store_tuples) {
  if (batch.empty()) return;
  assert(fns.size() == aggs_.size());
  dirty_ = true;
  bool noted = false;
  if (track_last_ts_) {
    // TrackTuple reads the slice metadata of the state *before* each tuple,
    // so interleave it with NoteTuple instead of batching the metadata pass.
    noted = true;
    for (const Tuple& t : batch) {
      if (track_last_ts_) TrackTuple(t, fns);
      NoteTuple(t);
    }
  }
  for (size_t i = 0; i < fns.size(); ++i) {
    fns[i]->LiftCombineBatch(batch, aggs_[i]);
  }
  if (store_tuples) {
    tuples_.reserve(tuples_.size() + batch.size());
    for (const Tuple& t : batch) {
      // In-order runs append; fall back to sorted insert for stragglers so
      // the (ts, seq) invariant holds for any caller.
      if (tuples_.empty() || !TupleLess(t, tuples_.back())) {
        tuples_.push_back(t);
      } else {
        RawInsertSorted(t);
      }
    }
  }
  if (!noted) {
    for (const Tuple& t : batch) NoteTuple(t);
  }
}

void Slice::AddTupleColumns(const TupleColumnsView& cols,
                            const std::vector<AggregateFunctionPtr>& fns,
                            bool store_tuples) {
  if (cols.empty()) return;
  assert(fns.size() == aggs_.size());
  dirty_ = true;
  if (track_last_ts_) {
    // TrackTuple reads the slice state *before* each tuple; no batched
    // shortcut exists, so materialize and interleave exactly like the AoS
    // path.
    for (size_t i = 0; i < cols.size; ++i) {
      const Tuple t = cols.Get(i);
      if (track_last_ts_) TrackTuple(t, fns);
      NoteTuple(t);
    }
  } else {
    // Monotone-run precondition: endpoints are the extrema.
    assert(cols.ts[0] <= cols.ts[cols.size - 1]);
    NoteTupleRange(cols.ts[0], cols.ts[cols.size - 1], cols.size);
  }
  for (size_t i = 0; i < fns.size(); ++i) {
    fns[i]->LiftCombineColumns(cols, aggs_[i]);
  }
  if (store_tuples) {
    tuples_.reserve(tuples_.size() + cols.size);
    for (size_t i = 0; i < cols.size; ++i) {
      const Tuple t = cols.Get(i);
      if (tuples_.empty() || !TupleLess(t, tuples_.back())) {
        tuples_.push_back(t);
      } else {
        RawInsertSorted(t);
      }
    }
  }
}

void Slice::NoteTupleRange(Time first, Time last, uint64_t count) {
  if (count == 0) return;
  dirty_ = true;
  if (t_first_ == kNoTime || first < t_first_) t_first_ = first;
  if (t_last_ == kNoTime || last > t_last_) t_last_ = last;
  tuple_count_ += count;
}

void Slice::Reset(Time start, Time end, size_t num_aggs) {
  dirty_ = true;
  start_ = start;
  end_ = end;
  t_first_ = t_last_ = kNoTime;
  tuple_count_ = 0;
  aggs_.assign(num_aggs, Partial{});
  tuples_.clear();
  // Recycled slices keep the tracking flag of their store but restart the
  // side state from scratch.
  prefix_aggs_.clear();
  last_aggs_.clear();
  prev_ts_ = kNoTime;
  last_count_ = 0;
}

void Slice::RecomputeFromTuples(const std::vector<AggregateFunctionPtr>& fns) {
  dirty_ = true;
  for (size_t i = 0; i < fns.size(); ++i) {
    Partial acc;
    for (const Tuple& t : tuples_) fns[i]->Combine(acc, fns[i]->Lift(t));
    aggs_[i] = std::move(acc);
  }
}

void Slice::MergeWith(const Slice& other,
                      const std::vector<AggregateFunctionPtr>& fns) {
  dirty_ = true;
  if (track_last_ts_ || other.track_last_ts_) MergeTrackingWith(other, fns);
  end_ = std::max(end_, other.end_);
  start_ = std::min(start_, other.start_);
  for (size_t i = 0; i < fns.size(); ++i) {
    fns[i]->Combine(aggs_[i], other.aggs_[i]);
  }
  if (!other.tuples_.empty()) {
    // Both slices keep tuples sorted; `other` covers a later range, but
    // out-of-order metadata moves can make ranges touch, so merge-sort to
    // stay safe.
    std::vector<Tuple> merged;
    merged.reserve(tuples_.size() + other.tuples_.size());
    std::merge(tuples_.begin(), tuples_.end(), other.tuples_.begin(),
               other.tuples_.end(), std::back_inserter(merged), TupleLess);
    tuples_ = std::move(merged);
  }
  if (other.t_first_ != kNoTime &&
      (t_first_ == kNoTime || other.t_first_ < t_first_)) {
    t_first_ = other.t_first_;
  }
  if (other.t_last_ != kNoTime &&
      (t_last_ == kNoTime || other.t_last_ > t_last_)) {
    t_last_ = other.t_last_;
  }
  tuple_count_ += other.tuple_count_;
}

/// Combines the side-partial state of two adjacent slices being merged.
/// Runs before any metadata or aggregate merging, so `this` still holds the
/// pre-merge fold. Only the strictly-later layout (other's tuples all after
/// ours) composes exactly; anything else conservatively disables tracking,
/// which merely falls back to the pre-fix split behavior.
void Slice::MergeTrackingWith(const Slice& other,
                              const std::vector<AggregateFunctionPtr>& fns) {
  if (other.empty()) return;  // our open group stays the newest
  if (empty()) {
    track_last_ts_ = other.track_last_ts_;
    prefix_aggs_ = other.prefix_aggs_;
    last_aggs_ = other.last_aggs_;
    prev_ts_ = other.prev_ts_;
    last_count_ = other.last_count_;
    return;
  }
  if (track_last_ts_ && other.track_last_ts_ && other.t_first_ > t_last_ &&
      !other.last_aggs_.empty()) {
    // New prefix = our complete fold (+) other's prefix; other's open
    // last-timestamp group stays open.
    std::vector<Partial> np = aggs_;
    for (size_t i = 0; i < fns.size() && i < other.prefix_aggs_.size(); ++i) {
      fns[i]->Combine(np[i], other.prefix_aggs_[i]);
    }
    prefix_aggs_ = std::move(np);
    last_aggs_ = other.last_aggs_;
    prev_ts_ = other.prev_ts_ != kNoTime ? other.prev_ts_ : t_last_;
    last_count_ = other.last_count_;
    return;
  }
  DisableTracking();
}

Slice Slice::SplitAt(Time t, const std::vector<AggregateFunctionPtr>& fns) {
  assert(start_ < t && t < end_);
  dirty_ = true;
  Slice right(t, end_, aggs_.size());
  right.track_last_ts_ = track_last_ts_;
  end_ = t;

  if (tuples_.empty()) {
    if (CanSplitAtTrackedLast(t)) {
      // Exact split at an occupied timestamp: the side partials hold the
      // fold of tuples below t (prefix) and exactly at t (last group), so
      // no tuple retention or recomputation is needed.
      assert(prefix_aggs_.size() == aggs_.size() &&
             last_aggs_.size() == aggs_.size());
      right.aggs_ = last_aggs_;
      right.t_first_ = right.t_last_ = t;
      right.tuple_count_ = last_count_;
      // The right half has no closed groups yet; its open group is ours.
      right.prefix_aggs_.assign(aggs_.size(), Partial{});
      right.last_aggs_ = std::move(last_aggs_);
      right.prev_ts_ = kNoTime;
      right.last_count_ = last_count_;

      aggs_ = std::move(prefix_aggs_);
      t_last_ = prev_ts_;
      tuple_count_ -= right.tuple_count_;
      // The left half keeps an occupied t_last it can no longer decompose.
      DisableTracking();
      return right;
    }
    // Metadata-only split: legal only when all tuples fall on one side.
    assert(empty() || t_last_ < t || t_first_ >= t);
    if (!empty() && t_first_ >= t) {
      // Everything moves to the right half, side partials included.
      right.aggs_ = std::move(aggs_);
      aggs_.assign(right.aggs_.size(), Partial{});
      right.t_first_ = t_first_;
      right.t_last_ = t_last_;
      right.tuple_count_ = tuple_count_;
      t_first_ = t_last_ = kNoTime;
      tuple_count_ = 0;
      if (track_last_ts_) {
        right.prefix_aggs_ = std::move(prefix_aggs_);
        right.last_aggs_ = std::move(last_aggs_);
        right.prev_ts_ = prev_ts_;
        right.last_count_ = last_count_;
        prefix_aggs_.clear();
        last_aggs_.clear();
        prev_ts_ = kNoTime;
        last_count_ = 0;
      }
    }
    return right;
  }
  // Tuples are stored: the side-partial decomposition is unnecessary (and
  // stale after the partition below), so drop it on both halves.
  DisableTracking();
  right.DisableTracking();

  // Real split: partition tuples at t and recompute both halves from scratch
  // (the expensive operation the paper warns about).
#ifdef SCOTTY_INJECT_SPLIT_BUG
  // Fuzzer self-test fault: tuples exactly at the split time stay in the
  // left slice, i.e. [start, t) silently becomes [start, t].
  auto pivot = std::lower_bound(
      tuples_.begin(), tuples_.end(), t,
      [](const Tuple& a, Time x) { return a.ts <= x; });
#else
  auto pivot = std::lower_bound(
      tuples_.begin(), tuples_.end(), t,
      [](const Tuple& a, Time x) { return a.ts < x; });
#endif
  right.tuples_.assign(pivot, tuples_.end());
  tuples_.erase(pivot, tuples_.end());

  auto reset_meta = [](Slice& s) {
    s.tuple_count_ = s.tuples_.size();
    if (s.tuples_.empty()) {
      s.t_first_ = s.t_last_ = kNoTime;
    } else {
      s.t_first_ = s.tuples_.front().ts;
      s.t_last_ = s.tuples_.back().ts;
    }
  };
  reset_meta(*this);
  reset_meta(right);
  RecomputeFromTuples(fns);
  right.RecomputeFromTuples(fns);
  return right;
}

Tuple Slice::PopLastTuple() {
  assert(!tuples_.empty());
  dirty_ = true;
  Tuple t = tuples_.back();
  tuples_.pop_back();
  --tuple_count_;
  if (tuples_.empty()) {
    t_first_ = t_last_ = kNoTime;
  } else {
    t_last_ = tuples_.back().ts;
  }
  return t;
}

void Slice::InsertTupleOnly(const Tuple& t) {
  dirty_ = true;
  RawInsertSorted(t);
  NoteTuple(t);
}

void Slice::RawInsertSorted(const Tuple& t) {
  auto it = std::upper_bound(tuples_.begin(), tuples_.end(), t, TupleLess);
  tuples_.insert(it, t);
}

size_t Slice::MemoryBytes() const {
  size_t bytes = MemoryModel::kSliceMetaBytes;
  for (const Partial& p : aggs_) bytes += p.TotalBytes();
  bytes += tuples_.capacity() * MemoryModel::kTupleBytes;
  return bytes;
}

void Slice::Serialize(state::Writer& w) const {
  w.I64(start_);
  w.I64(end_);
  w.I64(t_first_);
  w.I64(t_last_);
  w.U64(tuple_count_);
  w.U64(aggs_.size());
  for (const Partial& p : aggs_) p.Serialize(w);
  w.U64(tuples_.size());
  for (const Tuple& t : tuples_) state::SerializeTuple(w, t);
  w.Bool(track_last_ts_);
  if (track_last_ts_) {
    w.U64(prefix_aggs_.size());
    for (const Partial& p : prefix_aggs_) p.Serialize(w);
    w.U64(last_aggs_.size());
    for (const Partial& p : last_aggs_) p.Serialize(w);
    w.I64(prev_ts_);
    w.U64(last_count_);
  }
}

void Slice::Deserialize(state::Reader& r) {
  dirty_ = true;
  start_ = r.I64();
  end_ = r.I64();
  t_first_ = r.I64();
  t_last_ = r.I64();
  tuple_count_ = r.U64();
  const uint64_t na = r.U64();
  if (na > r.remaining()) {
    r.Fail();
    return;
  }
  aggs_.assign(static_cast<size_t>(na), Partial{});
  for (Partial& p : aggs_) p.Deserialize(r);
  const uint64_t nt = r.U64();
  if (nt > r.remaining()) {
    r.Fail();
    return;
  }
  tuples_.clear();
  tuples_.reserve(static_cast<size_t>(nt));
  for (uint64_t i = 0; i < nt && r.ok(); ++i) {
    tuples_.push_back(state::DeserializeTuple(r));
  }
  track_last_ts_ = r.Bool();
  prefix_aggs_.clear();
  last_aggs_.clear();
  prev_ts_ = kNoTime;
  last_count_ = 0;
  if (track_last_ts_) {
    const uint64_t np = r.U64();
    if (np > r.remaining()) {
      r.Fail();
      return;
    }
    prefix_aggs_.assign(static_cast<size_t>(np), Partial{});
    for (Partial& p : prefix_aggs_) p.Deserialize(r);
    const uint64_t nl = r.U64();
    if (nl > r.remaining()) {
      r.Fail();
      return;
    }
    last_aggs_.assign(static_cast<size_t>(nl), Partial{});
    for (Partial& p : last_aggs_) p.Deserialize(r);
    prev_ts_ = r.I64();
    last_count_ = r.U64();
  }
}

}  // namespace scotty
