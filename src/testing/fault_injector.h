#ifndef SCOTTY_TESTING_FAULT_INJECTOR_H_
#define SCOTTY_TESTING_FAULT_INJECTOR_H_

// Fault injection for the checkpoint/recovery path (DESIGN.md §7).
//
// A FaultPlan fully determines one simulated failure: the process "dies" at
// a random tuple index (in-memory operator state is discarded), and the
// newest snapshot file on disk is optionally torn (truncated mid-payload)
// or corrupted (single bit flip). RunToFinalResultsCrashRecovered then
// recovers exactly like a production restart would — newest valid snapshot,
// falling back past damaged files, from scratch when nothing validates —
// replays the remainder of the stream, and returns the merged downstream
// view. The differential fuzzer's --crash dimension requires that view to
// be bit-identical to the same technique's unfaulted run.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "testing/harness.h"

namespace scotty {
namespace testing {

/// What happens to the newest snapshot file after the simulated crash.
enum class SnapshotFault : uint8_t {
  kNone,      ///< crash only; every snapshot file stays intact
  kTruncate,  ///< cut the newest file short in place (torn write)
  kBitFlip,   ///< flip one bit of the newest file (media corruption)
};

/// One deterministic failure scenario. `fault_arg` is raw RNG material the
/// fault application derives its truncation point / flip offset from, so a
/// (seed, num_tuples) pair replays the exact same damage.
struct FaultPlan {
  uint64_t crash_index = 0;  ///< crash fires just before this tuple index
  SnapshotFault fault = SnapshotFault::kNone;
  uint64_t fault_arg = 0;
};

/// Derives a plan from `seed`: crash index uniform in [1, num_tuples], and
/// roughly half the seeds additionally damage the newest snapshot
/// (truncation and bit flips equally likely).
FaultPlan MakeFaultPlan(uint64_t seed, size_t num_tuples);

/// Applies `plan.fault` to the file at `path` in place (no temp + rename —
/// this models damage that bypasses the atomic-write protocol, e.g. a torn
/// sector). kNone is a no-op. Returns false only on an I/O error; an empty
/// file is left as is.
bool ApplySnapshotFault(const std::string& path, const FaultPlan& plan);

/// Observability for one crash-recovery run, mostly for tests.
struct CrashRunStats {
  uint64_t barriers = 0;  ///< checkpoints persisted before the crash
  bool recovered_from_scratch = false;  ///< no snapshot validated
  bool fell_back = false;  ///< a newer snapshot was rejected during recovery
  std::string path_used;   ///< snapshot file recovery restored from
};

/// Crash-recovering twin of RunToFinalResults. Phase one runs a fresh
/// operator from `factory` with the identical tuple/watermark cadence,
/// persisting a snapshot through a CheckpointCoordinator (retain = 3) at
/// every watermark barrier — results are drained BEFORE each barrier, so
/// the `delivered` map models output a downstream consumer durably holds at
/// crash time. At `plan.crash_index` the operator is destroyed, the newest
/// snapshot file is damaged per the plan, and recovery restores from the
/// newest snapshot that validates (or from scratch when none does) and
/// replays the remainder. `*out` receives the downstream merge: delivered
/// results overlaid by everything the recovered run emitted. The contract
/// enforced by the --crash fuzz dimension: `*out` equals the unfaulted
/// run's final results EXACTLY (restore is bit-identical, so even
/// order-dependent floating-point aggregations may not drift).
///
/// `scratch_dir` is created fresh (any previous contents removed) and
/// deleted again on success. Returns false with `*error` set on harness
/// failures — including recovery invariant violations: recovery failing
/// while intact snapshots exist, fallback failing past a single damaged
/// file, or a damaged file validating.
bool RunToFinalResultsCrashRecovered(
    const std::function<std::unique_ptr<WindowOperator>()>& factory,
    const std::vector<Tuple>& tuples, Time final_wm, int wm_every, Time wm_lag,
    const FaultPlan& plan, const std::string& scratch_dir,
    std::map<ResultKey, Value>* out, std::string* error,
    CrashRunStats* stats = nullptr);

}  // namespace testing
}  // namespace scotty

#endif  // SCOTTY_TESTING_FAULT_INJECTOR_H_
