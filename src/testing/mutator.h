#ifndef SCOTTY_TESTING_MUTATOR_H_
#define SCOTTY_TESTING_MUTATOR_H_

// Mutation engine over DifferentialConfig for the guided fuzz loop
// (DESIGN.md §8). Operators mutate the *generator parameters* — stream
// shape, query set, persistence dimensions — not raw tuple bytes: the
// search space is the same (seed, spec) space RandomConfig draws from, so
// every mutant stays a one-line replayable reproducer and the structural
// invariants the harness assumes (frames need distinct timestamps, punct
// windows need punctuation, slides fit their windows) are restored by
// Sanitize() after every step.

#include <cstdint>

#include "common/rng.h"
#include "testing/differential.h"

namespace scotty {
namespace testing {

/// Applies 1–3 random mutation operators to `cfg` (reseed, stream resize /
/// retime / redisorder, value-range and punctuation shifts, window nudge /
/// add / drop, aggregation add / swap, wm/batch/checkpoint/crash/rescale
/// dimension shifts) and returns the sanitized mutant.
DifferentialConfig Mutate(const DifferentialConfig& cfg, Rng& rng);

/// Crossover: windows and aggregations spliced from both parents, stream
/// and dimensions from one of them, sanitized.
DifferentialConfig Splice(const DifferentialConfig& a,
                          const DifferentialConfig& b, Rng& rng);

/// Restores the invariants RandomConfig guarantees by construction; every
/// mutation pipeline ends here so no operator has to reason about any other
/// operator's damage. Clamps sizes, fixes step/slide/threshold ranges,
/// couples punctuation probability to punct windows and disorder to
/// max_delay, dedups aggregations.
void Sanitize(DifferentialConfig* cfg);

}  // namespace testing
}  // namespace scotty

#endif  // SCOTTY_TESTING_MUTATOR_H_
