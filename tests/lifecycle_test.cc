// Operator lifecycle: adding and removing queries while the stream runs
// (the paper's adaptivity), trigger-heap bookkeeping, and state bounds.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "aggregates/registry.h"
#include "core/general_slicing_operator.h"
#include "tests/test_util.h"
#include "windows/punctuation.h"
#include "windows/session.h"
#include "windows/sliding.h"
#include "windows/tumbling.h"

namespace scotty {
namespace {

using testutil::FinalResults;
using testutil::Num;
using testutil::T;

GeneralSlicingOperator::Options Opts(bool in_order, Time lateness = 1000) {
  GeneralSlicingOperator::Options o;
  o.stream_in_order = in_order;
  o.allowed_lateness = lateness;
  return o;
}

TEST(Lifecycle, AddWindowMidStream) {
  GeneralSlicingOperator op(Opts(false));
  op.AddAggregation(MakeAggregation("sum"));
  op.AddWindow(std::make_shared<TumblingWindow>(10));
  op.ProcessTuple(T(5, 1, 0));
  op.ProcessTuple(T(15, 2, 1));
  // A second query joins while the stream runs.
  const int w2 = op.AddWindow(std::make_shared<TumblingWindow>(20));
  op.ProcessTuple(T(25, 4, 2));
  op.ProcessTuple(T(35, 8, 3));
  op.ProcessWatermark(40);
  auto fin = FinalResults(op.TakeResults());
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 0, 10}]), 1.0);
  EXPECT_DOUBLE_EQ(Num(fin[{0, 0, 30, 40}]), 8.0);
  // The new query's windows cover the whole range; early ones may span
  // stream history it never saw sliced — at minimum [20, 40) must be exact.
  EXPECT_DOUBLE_EQ(Num(fin[{w2, 0, 20, 40}]), 12.0);
}

TEST(Lifecycle, RemoveWindowStopsItsTriggers) {
  GeneralSlicingOperator op(Opts(false));
  op.AddAggregation(MakeAggregation("sum"));
  const int w1 = op.AddWindow(std::make_shared<TumblingWindow>(10));
  const int w2 = op.AddWindow(std::make_shared<TumblingWindow>(5));
  op.ProcessTuple(T(3, 1, 0));
  op.RemoveWindow(w2);
  op.ProcessTuple(T(12, 2, 1));
  op.ProcessWatermark(20);
  for (const WindowResult& r : op.TakeResults()) {
    EXPECT_EQ(r.window_id, w1) << "removed window must not trigger";
  }
}

TEST(Lifecycle, RemoveAndReaddKeepsIdsStable) {
  GeneralSlicingOperator op(Opts(false));
  op.AddAggregation(MakeAggregation("sum"));
  const int w1 = op.AddWindow(std::make_shared<TumblingWindow>(10));
  op.RemoveWindow(w1);
  const int w2 = op.AddWindow(std::make_shared<TumblingWindow>(10));
  EXPECT_NE(w1, w2);
  op.ProcessTuple(T(5, 3, 0));
  op.ProcessWatermark(10);
  auto fin = FinalResults(op.TakeResults());
  EXPECT_DOUBLE_EQ(Num(fin[{w2, 0, 0, 10}]), 3.0);
}

TEST(Lifecycle, AddingSessionMidStreamActivatesContextPath) {
  GeneralSlicingOperator op(Opts(false));
  op.AddAggregation(MakeAggregation("sum"));
  op.AddWindow(std::make_shared<TumblingWindow>(10));
  op.ProcessTuple(T(5, 1, 0));
  const int sess = op.AddWindow(std::make_shared<SessionWindow>(5));
  op.ProcessTuple(T(20, 2, 1));
  op.ProcessTuple(T(40, 4, 2));
  op.ProcessWatermark(50);
  auto fin = FinalResults(op.TakeResults());
  EXPECT_DOUBLE_EQ(Num(fin[{sess, 0, 20, 25}]), 2.0);
  EXPECT_DOUBLE_EQ(Num(fin[{sess, 0, 40, 45}]), 4.0);
}

TEST(Lifecycle, AddingCountWindowMidStreamCreatesCountLane) {
  GeneralSlicingOperator op(Opts(false));
  op.AddAggregation(MakeAggregation("sum"));
  op.AddWindow(std::make_shared<TumblingWindow>(10));
  op.ProcessTuple(T(5, 1, 0));
  EXPECT_EQ(op.count_lane(), nullptr);
  const int cw =
      op.AddWindow(std::make_shared<TumblingWindow>(2, Measure::kCount));
  ASSERT_NE(op.count_lane(), nullptr);
  op.ProcessTuple(T(15, 2, 1));
  op.ProcessTuple(T(25, 4, 2));
  op.ProcessWatermark(30);
  auto fin = FinalResults(op.TakeResults());
  // The count lane starts counting from its creation: ranks 0,1 are the
  // tuples at 15 and 25.
  EXPECT_DOUBLE_EQ(Num(fin[{cw, 0, 0, 2}]), 6.0);
}

TEST(Lifecycle, WorkloadDecisionUpdatesOnQueryChanges) {
  GeneralSlicingOperator op(Opts(false));
  op.AddAggregation(MakeAggregation("sum"));
  op.AddWindow(std::make_shared<TumblingWindow>(10));
  EXPECT_FALSE(op.queries().StoreTuples());
  const int punct = op.AddWindow(std::make_shared<PunctuationWindow>());
  EXPECT_TRUE(op.queries().StoreTuples());  // FCF + OOO
  op.RemoveWindow(punct);
  EXPECT_FALSE(op.queries().StoreTuples());
}

TEST(Lifecycle, StateStaysBoundedOverLongRuns) {
  GeneralSlicingOperator op(Opts(false, /*lateness=*/500));
  op.AddAggregation(MakeAggregation("sum"));
  op.AddWindow(std::make_shared<TumblingWindow>(100));
  op.AddWindow(std::make_shared<SlidingWindow>(400, 100));
  size_t peak = 0;
  for (int i = 0; i < 100000; ++i) {
    op.ProcessTuple(T(i, 1.0, static_cast<uint64_t>(i)));
    if (i % 1000 == 999) {
      op.ProcessWatermark(i - 100);
      op.TakeResults();
      peak = std::max(peak, op.MemoryUsageBytes());
    }
  }
  // Horizon: window extent 400 + lateness 500 => ~9-12 slices alive.
  EXPECT_LE(op.time_store()->NumSlices(), 16u);
  EXPECT_LE(peak, 16u * 200);
}

TEST(Lifecycle, ResultsAccumulateUntilTaken) {
  GeneralSlicingOperator op(Opts(false));
  op.AddAggregation(MakeAggregation("sum"));
  op.AddWindow(std::make_shared<TumblingWindow>(10));
  op.ProcessTuple(T(5, 1, 0));
  op.ProcessTuple(T(25, 1, 1));
  op.ProcessWatermark(10);
  op.ProcessWatermark(20);
  auto all = op.TakeResults();
  EXPECT_EQ(all.size(), 2u);  // [0,10) and the empty [10,20)
  EXPECT_TRUE(op.TakeResults().empty());
}

TEST(Lifecycle, PerWindowTriggerHeapSurvivesSparseEdges) {
  // Windows with wildly different lengths: the heap must trigger each at
  // its own cadence without scanning the others.
  GeneralSlicingOperator op(Opts(false));
  op.AddAggregation(MakeAggregation("count"));
  const int fast = op.AddWindow(std::make_shared<TumblingWindow>(2));
  const int slow = op.AddWindow(std::make_shared<TumblingWindow>(1000));
  for (int i = 0; i < 2000; ++i) {
    op.ProcessTuple(T(i, 1.0, static_cast<uint64_t>(i)));
  }
  op.ProcessWatermark(2000);
  int fast_windows = 0;
  int slow_windows = 0;
  for (const WindowResult& r : op.TakeResults()) {
    if (r.window_id == fast) ++fast_windows;
    if (r.window_id == slow) ++slow_windows;
  }
  EXPECT_EQ(fast_windows, 1000);
  EXPECT_EQ(slow_windows, 2);
}

TEST(Lifecycle, InterleavedWatermarksAndLateTuples) {
  GeneralSlicingOperator op(Opts(false, /*lateness=*/100));
  op.AddAggregation(MakeAggregation("sum"));
  op.AddWindow(std::make_shared<TumblingWindow>(10));
  uint64_t seq = 0;
  double expected_updates = 0;
  for (int round = 0; round < 20; ++round) {
    const Time base = round * 50;
    op.ProcessTuple(T(base + 5, 1, seq++));
    op.ProcessTuple(T(base + 15, 1, seq++));
    op.ProcessWatermark(base + 20);
    op.ProcessTuple(T(base + 7, 2, seq++));  // late into [base, base+10)
    expected_updates += 1;
  }
  op.ProcessWatermark(2000);
  int updates = 0;
  for (const WindowResult& r : op.TakeResults()) {
    if (r.is_update) {
      ++updates;
      EXPECT_DOUBLE_EQ(Num(r.value), 3.0);  // 1 + late 2
    }
  }
  EXPECT_EQ(updates, 20);
}

}  // namespace
}  // namespace scotty
