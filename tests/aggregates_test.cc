// Unit tests for the incremental aggregation framework (lift / combine /
// lower / invert) and every built-in aggregation.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "aggregates/algebraic.h"
#include "aggregates/basic.h"
#include "aggregates/holistic.h"
#include "aggregates/ordered.h"
#include "aggregates/registry.h"
#include "common/rng.h"
#include "tests/test_util.h"

namespace scotty {
namespace {

using testutil::T;

Partial FoldAll(const AggregateFunction& fn, const std::vector<Tuple>& ts) {
  Partial acc;
  for (const Tuple& t : ts) fn.Combine(acc, fn.Lift(t));
  return acc;
}

std::vector<Tuple> SomeTuples() {
  return {T(1, 4.0), T(2, -1.5), T(3, 7.0), T(4, 7.0), T(5, 0.5), T(6, 3.25)};
}

TEST(SumAggregation, LiftCombineLower) {
  SumAggregation sum;
  const Value v = sum.Lower(FoldAll(sum, SomeTuples()));
  EXPECT_DOUBLE_EQ(v.AsDouble(), 4.0 - 1.5 + 7.0 + 7.0 + 0.5 + 3.25);
}

TEST(SumAggregation, IdentityIsNeutralOnBothSides) {
  SumAggregation sum;
  Partial lifted = sum.Lift(T(1, 5.0));
  Partial left = sum.Identity();
  sum.Combine(left, lifted);
  EXPECT_DOUBLE_EQ(sum.Lower(left).AsDouble(), 5.0);
  Partial right = lifted;
  sum.Combine(right, sum.Identity());
  EXPECT_DOUBLE_EQ(sum.Lower(right).AsDouble(), 5.0);
}

TEST(SumAggregation, InvertRemovesContribution) {
  SumAggregation sum;
  Partial acc = FoldAll(sum, SomeTuples());
  sum.Invert(acc, sum.Lift(T(3, 7.0)));
  EXPECT_DOUBLE_EQ(sum.Lower(acc).AsDouble(), 4.0 - 1.5 + 7.0 + 0.5 + 3.25);
  EXPECT_TRUE(sum.IsInvertible());
}

TEST(SumAggregation, EmptyLowersToEmptyValue) {
  SumAggregation sum;
  EXPECT_TRUE(sum.Lower(sum.Identity()).IsEmpty());
}

TEST(SumNoInvertAggregation, ReportsNotInvertible) {
  SumNoInvertAggregation s;
  EXPECT_FALSE(s.IsInvertible());
  EXPECT_EQ(s.Name(), "sum-no-invert");
  // Still sums correctly.
  EXPECT_DOUBLE_EQ(s.Lower(FoldAll(s, SomeTuples())).AsDouble(), 20.25);
}

TEST(CountAggregation, CountsAndInverts) {
  CountAggregation c;
  Partial acc = FoldAll(c, SomeTuples());
  EXPECT_EQ(c.Lower(acc).AsInt(), 6);
  c.Invert(acc, c.Lift(T(1, 4.0)));
  EXPECT_EQ(c.Lower(acc).AsInt(), 5);
}

TEST(CountAggregation, EmptyIsZero) {
  CountAggregation c;
  EXPECT_EQ(c.Lower(c.Identity()).AsInt(), 0);
}

TEST(MinMaxAggregation, ComputeExtremes) {
  MinAggregation mn;
  MaxAggregation mx;
  EXPECT_DOUBLE_EQ(mn.Lower(FoldAll(mn, SomeTuples())).AsDouble(), -1.5);
  EXPECT_DOUBLE_EQ(mx.Lower(FoldAll(mx, SomeTuples())).AsDouble(), 7.0);
  EXPECT_FALSE(mn.IsInvertible());
  EXPECT_FALSE(mx.IsInvertible());
}

TEST(AvgAggregation, AveragesAndInverts) {
  AvgAggregation avg;
  Partial acc = FoldAll(avg, SomeTuples());
  EXPECT_DOUBLE_EQ(avg.Lower(acc).AsDouble(), 20.25 / 6.0);
  avg.Invert(acc, avg.Lift(T(2, -1.5)));
  EXPECT_DOUBLE_EQ(avg.Lower(acc).AsDouble(), 21.75 / 5.0);
}

TEST(GeometricMeanAggregation, MatchesClosedForm) {
  GeometricMeanAggregation g;
  std::vector<Tuple> ts = {T(1, 2.0), T(2, 8.0)};
  EXPECT_NEAR(g.Lower(FoldAll(g, ts)).AsDouble(), 4.0, 1e-12);
}

TEST(GeometricMeanAggregation, InvertRestoresPrefix) {
  GeometricMeanAggregation g;
  std::vector<Tuple> ts = {T(1, 2.0), T(2, 8.0), T(3, 4.0)};
  Partial acc = FoldAll(g, ts);
  g.Invert(acc, g.Lift(T(3, 4.0)));
  EXPECT_NEAR(g.Lower(acc).AsDouble(), 4.0, 1e-12);
}

TEST(StdDevAggregation, MatchesTwoPassFormula) {
  StdDevAggregation sd;
  std::vector<Tuple> ts = SomeTuples();
  Partial acc = FoldAll(sd, ts);
  // Two-pass reference.
  double mean = 0;
  for (const Tuple& t : ts) mean += t.value;
  mean /= static_cast<double>(ts.size());
  double m2 = 0;
  for (const Tuple& t : ts) m2 += (t.value - mean) * (t.value - mean);
  const double expected = std::sqrt(m2 / static_cast<double>(ts.size() - 1));
  EXPECT_NEAR(sd.Lower(acc).AsDouble(), expected, 1e-9);
}

TEST(StdDevAggregation, CombineIsOrderInsensitive) {
  StdDevAggregation sd;
  std::vector<Tuple> ts = SomeTuples();
  Partial a = FoldAll(sd, {ts[0], ts[1], ts[2]});
  Partial b = FoldAll(sd, {ts[3], ts[4], ts[5]});
  Partial ab = a;
  sd.Combine(ab, b);
  Partial ba = b;
  sd.Combine(ba, a);
  EXPECT_NEAR(sd.Lower(ab).AsDouble(), sd.Lower(ba).AsDouble(), 1e-9);
}

TEST(StdDevAggregation, InvertRemovesSuffix) {
  StdDevAggregation sd;
  std::vector<Tuple> ts = SomeTuples();
  Partial all = FoldAll(sd, ts);
  Partial suffix = FoldAll(sd, {ts[4], ts[5]});
  sd.Invert(all, suffix);
  Partial prefix = FoldAll(sd, {ts[0], ts[1], ts[2], ts[3]});
  EXPECT_NEAR(sd.Lower(all).AsDouble(), sd.Lower(prefix).AsDouble(), 1e-9);
}

TEST(MinCountAggregation, CountsMultiplicityOfMinimum) {
  MinCountAggregation mc;
  std::vector<Tuple> ts = {T(1, 3.0), T(2, 1.0), T(3, 1.0), T(4, 2.0)};
  const Value v = mc.Lower(FoldAll(mc, ts));
  EXPECT_DOUBLE_EQ(v.AsArg().value, 1.0);
  EXPECT_EQ(v.AsArg().arg, 2);  // multiplicity stored in arg slot
}

TEST(MaxCountAggregation, CountsMultiplicityOfMaximum) {
  MaxCountAggregation mc;
  std::vector<Tuple> ts = {T(1, 7.0), T(2, 7.0), T(3, 7.0), T(4, 2.0)};
  const Value v = mc.Lower(FoldAll(mc, ts));
  EXPECT_DOUBLE_EQ(v.AsArg().value, 7.0);
  EXPECT_EQ(v.AsArg().arg, 3);
}

TEST(ArgMinArgMax, ReturnExtremumTimestamps) {
  ArgMinAggregation amin;
  ArgMaxAggregation amax;
  std::vector<Tuple> ts = SomeTuples();
  const Value lo = amin.Lower(FoldAll(amin, ts));
  const Value hi = amax.Lower(FoldAll(amax, ts));
  EXPECT_DOUBLE_EQ(lo.AsArg().value, -1.5);
  EXPECT_EQ(lo.AsArg().arg, 2);
  EXPECT_DOUBLE_EQ(hi.AsArg().value, 7.0);
  EXPECT_EQ(hi.AsArg().arg, 3);  // earliest occurrence wins the tie
}

TEST(ArgMaxAggregation, TieBreakIsCombineOrderIndependent) {
  ArgMaxAggregation amax;
  Partial a = amax.Lift(T(10, 7.0));
  Partial b = amax.Lift(T(3, 7.0));
  Partial ab = a;
  amax.Combine(ab, b);
  Partial ba = b;
  amax.Combine(ba, a);
  EXPECT_EQ(amax.Lower(ab).AsArg().arg, 3);
  EXPECT_EQ(amax.Lower(ba).AsArg().arg, 3);
}

TEST(M4Aggregation, ComputesMinMaxFirstLast) {
  M4Aggregation m4;
  const Value v = m4.Lower(FoldAll(m4, SomeTuples()));
  EXPECT_DOUBLE_EQ(v.AsM4().min, -1.5);
  EXPECT_DOUBLE_EQ(v.AsM4().max, 7.0);
  EXPECT_DOUBLE_EQ(v.AsM4().first, 4.0);
  EXPECT_DOUBLE_EQ(v.AsM4().last, 3.25);
}

TEST(M4Aggregation, FirstLastResolvedByTimestampNotCombineOrder) {
  M4Aggregation m4;
  // Combine the later partial first: first/last must still follow event time.
  Partial late = FoldAll(m4, {T(5, 0.5), T(6, 3.25)});
  Partial early = FoldAll(m4, {T(1, 4.0), T(2, -1.5)});
  Partial acc = late;
  m4.Combine(acc, early);
  const Value v = m4.Lower(acc);
  EXPECT_DOUBLE_EQ(v.AsM4().first, 4.0);
  EXPECT_DOUBLE_EQ(v.AsM4().last, 3.25);
}

TEST(MedianAggregation, OddAndEvenCounts) {
  MedianAggregation med;
  std::vector<Tuple> odd = {T(1, 5.0), T(2, 1.0), T(3, 9.0)};
  EXPECT_DOUBLE_EQ(med.Lower(FoldAll(med, odd)).AsDouble(), 5.0);
  std::vector<Tuple> even = {T(1, 5.0), T(2, 1.0), T(3, 9.0), T(4, 7.0)};
  // Nearest-rank median of {1,5,7,9}: rank ceil(0.5*4)=2 -> 5 (0-indexed 1).
  EXPECT_DOUBLE_EQ(med.Lower(FoldAll(med, even)).AsDouble(), 5.0);
}

TEST(MedianAggregation, MergePreservesMultiplicities) {
  MedianAggregation med;
  Partial a = FoldAll(med, {T(1, 2.0), T(2, 2.0), T(3, 2.0)});
  Partial b = FoldAll(med, {T(4, 1.0), T(5, 3.0)});
  Partial acc = a;
  med.Combine(acc, b);
  EXPECT_EQ(acc.Get<SortedRuns>().total, 5);
  EXPECT_EQ(acc.Get<SortedRuns>().runs.size(), 3u);
  EXPECT_DOUBLE_EQ(med.Lower(acc).AsDouble(), 2.0);
}

TEST(MedianAggregation, InvertRemovesValues) {
  MedianAggregation med;
  Partial acc = FoldAll(med, {T(1, 1.0), T(2, 2.0), T(3, 3.0), T(4, 4.0)});
  med.Invert(acc, med.Lift(T(4, 4.0)));
  EXPECT_EQ(acc.Get<SortedRuns>().total, 3);
  EXPECT_DOUBLE_EQ(med.Lower(acc).AsDouble(), 2.0);
}

TEST(Percentile90, NearestRankSemantics) {
  Percentile90Aggregation p90;
  std::vector<Tuple> ts;
  for (int i = 1; i <= 100; ++i) ts.push_back(T(i, i));
  // Nearest rank: ceil(0.9 * 100) = 90th smallest -> value 90.
  EXPECT_DOUBLE_EQ(p90.Lower(FoldAll(p90, ts)).AsDouble(), 90.0);
}

TEST(SortedRuns, RunLengthEncodingCompressesDuplicates) {
  SortedRuns runs;
  for (int i = 0; i < 1000; ++i) runs.Insert(static_cast<double>(i % 4));
  EXPECT_EQ(runs.total, 1000);
  EXPECT_EQ(runs.runs.size(), 4u);  // the paper's RLE memory saving
  EXPECT_TRUE(runs.Remove(2.0));
  EXPECT_EQ(runs.total, 999);
  EXPECT_FALSE(runs.Remove(17.0));
}

TEST(SortedRuns, ValueAtRankWalksRuns) {
  SortedRuns runs;
  runs.Insert(1.0);
  runs.Insert(1.0);
  runs.Insert(5.0);
  EXPECT_DOUBLE_EQ(runs.ValueAtRank(0), 1.0);
  EXPECT_DOUBLE_EQ(runs.ValueAtRank(1), 1.0);
  EXPECT_DOUBLE_EQ(runs.ValueAtRank(2), 5.0);
}

TEST(ConcatAggregation, IsAssociativeButNotCommutative) {
  ConcatAggregation cat;
  EXPECT_FALSE(cat.IsCommutative());
  Partial a = cat.Lift(T(1, 1.0));
  Partial b = cat.Lift(T(2, 2.0));
  Partial c = cat.Lift(T(3, 3.0));
  // (a+b)+c
  Partial ab = a;
  cat.Combine(ab, b);
  Partial abc1 = ab;
  cat.Combine(abc1, c);
  // a+(b+c)
  Partial bc = b;
  cat.Combine(bc, c);
  Partial abc2 = a;
  cat.Combine(abc2, bc);
  EXPECT_EQ(cat.Lower(abc1).AsSequence(), cat.Lower(abc2).AsSequence());
  // b+a differs from a+b.
  Partial ba = b;
  cat.Combine(ba, a);
  EXPECT_NE(cat.Lower(ab).AsSequence(), cat.Lower(ba).AsSequence());
}

TEST(Registry, CreatesEveryBuiltin) {
  for (const std::string& name : BuiltinAggregationNames()) {
    AggregateFunctionPtr fn = MakeAggregation(name);
    ASSERT_NE(fn, nullptr) << name;
    EXPECT_EQ(fn->Name(), name);
  }
  EXPECT_EQ(MakeAggregation("no-such-aggregation"), nullptr);
}

TEST(Registry, ClassificationsMatchPaperTable) {
  EXPECT_EQ(MakeAggregation("sum")->Class(), AggClass::kDistributive);
  EXPECT_EQ(MakeAggregation("count")->Class(), AggClass::kDistributive);
  EXPECT_EQ(MakeAggregation("min")->Class(), AggClass::kDistributive);
  EXPECT_EQ(MakeAggregation("avg")->Class(), AggClass::kAlgebraic);
  EXPECT_EQ(MakeAggregation("m4")->Class(), AggClass::kAlgebraic);
  EXPECT_EQ(MakeAggregation("stddev")->Class(), AggClass::kAlgebraic);
  EXPECT_EQ(MakeAggregation("median")->Class(), AggClass::kHolistic);
  EXPECT_EQ(MakeAggregation("p90")->Class(), AggClass::kHolistic);
  EXPECT_EQ(MakeAggregation("concat")->Class(), AggClass::kHolistic);
}

// ---------------------------------------------------------------------------
// Property sweep: associativity of Combine for every builtin — random splits
// of a random tuple sequence must produce the same final aggregate.
// ---------------------------------------------------------------------------

class AssociativityTest : public ::testing::TestWithParam<std::string> {};

TEST_P(AssociativityTest, RandomSplitsAgree) {
  AggregateFunctionPtr fn = MakeAggregation(GetParam());
  ASSERT_NE(fn, nullptr);
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 1 + static_cast<int>(rng.NextBounded(40));
    std::vector<Tuple> ts;
    for (int i = 0; i < n; ++i) {
      ts.push_back(T(i + 1, static_cast<double>(rng.NextBounded(50)) + 0.5,
                     static_cast<uint64_t>(i)));
    }
    // Reference: straight left fold.
    const Partial ref = FoldAll(*fn, ts);
    // Random split point: fold halves, then combine.
    const size_t cut = rng.NextBounded(static_cast<uint64_t>(n) + 1);
    Partial left = FoldAll(
        *fn, std::vector<Tuple>(ts.begin(), ts.begin() + static_cast<long>(cut)));
    Partial right = FoldAll(
        *fn, std::vector<Tuple>(ts.begin() + static_cast<long>(cut), ts.end()));
    fn->Combine(left, right);
    const Value expected = fn->Lower(ref);
    const Value actual = fn->Lower(left);
    if (expected.IsDouble()) {
      // Floating-point folds may round differently across associations.
      EXPECT_NEAR(actual.AsDouble(), expected.AsDouble(), 1e-9)
          << fn->Name() << " trial " << trial;
    } else {
      EXPECT_EQ(actual, expected) << fn->Name() << " trial " << trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAggregations, AssociativityTest,
    ::testing::ValuesIn(BuiltinAggregationNames()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// Commutative builtins must also satisfy x (+) y == y (+) x.
class CommutativityTest : public ::testing::TestWithParam<std::string> {};

TEST_P(CommutativityTest, PairwiseSwapsAgree) {
  AggregateFunctionPtr fn = MakeAggregation(GetParam());
  ASSERT_NE(fn, nullptr);
  if (!fn->IsCommutative()) GTEST_SKIP() << "non-commutative by design";
  Rng rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    // Distinct seq values: ties on equal timestamps resolve by arrival order.
    Partial a = fn->Lift(T(static_cast<Time>(rng.NextBounded(100)),
                           static_cast<double>(rng.NextBounded(10)),
                           static_cast<uint64_t>(2 * trial)));
    Partial b = fn->Lift(T(static_cast<Time>(rng.NextBounded(100)),
                           static_cast<double>(rng.NextBounded(10)),
                           static_cast<uint64_t>(2 * trial + 1)));
    Partial ab = a;
    fn->Combine(ab, b);
    Partial ba = b;
    fn->Combine(ba, a);
    EXPECT_EQ(fn->Lower(ab), fn->Lower(ba)) << fn->Name();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAggregations, CommutativityTest,
    ::testing::ValuesIn(BuiltinAggregationNames()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// Invertible builtins: (acc (+) x) (-) x == acc, verified through Lower.
class InvertibilityTest : public ::testing::TestWithParam<std::string> {};

TEST_P(InvertibilityTest, CombineThenInvertRoundTrips) {
  AggregateFunctionPtr fn = MakeAggregation(GetParam());
  ASSERT_NE(fn, nullptr);
  if (!fn->IsInvertible()) GTEST_SKIP() << "not invertible by design";
  Rng rng(13);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = 2 + static_cast<int>(rng.NextBounded(20));
    std::vector<Tuple> ts;
    for (int i = 0; i < n; ++i) {
      ts.push_back(T(i + 1, static_cast<double>(rng.NextBounded(30)) + 1.0));
    }
    Partial acc = FoldAll(*fn, ts);
    const Tuple extra = T(n + 1, 17.0);
    fn->Combine(acc, fn->Lift(extra));
    fn->Invert(acc, fn->Lift(extra));
    const Value expected = fn->Lower(FoldAll(*fn, ts));
    const Value actual = fn->Lower(acc);
    if (expected.IsDouble()) {
      EXPECT_NEAR(actual.AsDouble(), expected.AsDouble(), 1e-6) << fn->Name();
    } else {
      EXPECT_EQ(actual, expected) << fn->Name();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAggregations, InvertibilityTest,
    ::testing::ValuesIn(BuiltinAggregationNames()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace scotty
