// Table 1: Memory usage of aggregation techniques — validates the measured
// byte counts of every operator against the paper's closed-form formulas.
//
//  1. Tuple buffer:        |tuples| * size(tuple)
//  2. Aggregate tree:      |tuples| * size(tuple) + (|tuples|-1) * size(agg)
//  3. Aggregate buckets:   |win| * size(agg) + |win| * size(bucket)
//  4. Tuple buckets:       |win| * (avg tuples/win * size(tuple) + size(bkt))
//  5. Lazy slicing:        |slices| * size(slice incl. agg)
//  6. Eager slicing:       |slices| * size(slice) + (|slices|-1) * size(agg)
//  7. Lazy slicing+tuples: |tuples| * size(tuple) + |slices| * size(slice)
//  8. Eager slicing+tuples: row 7 + (|slices|-1) * size(agg)
//
// The bench prints measured vs modeled bytes and the ratio; ratios near 1.0
// confirm the implementation matches the memory model.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/memory.h"
#include "windows/tumbling.h"

namespace scotty {
namespace bench {
namespace {

constexpr int64_t kTuples = 20000;
constexpr Time kHorizon = 200000;   // event-time span of the run
constexpr Time kWindowLen = 1000;   // -> 200 windows/slices in the horizon
constexpr int64_t kSlices = kHorizon / kWindowLen;

std::unique_ptr<WindowOperator> Feed(Technique tech, bool force_tuples) {
  std::vector<WindowPtr> windows = {
      std::make_shared<TumblingWindow>(kWindowLen)};
  std::unique_ptr<WindowOperator> op;
  if (force_tuples &&
      (tech == Technique::kLazySlicing || tech == Technique::kEagerSlicing)) {
    GeneralSlicingOperator::Options o;
    o.stream_in_order = false;
    o.allowed_lateness = kHorizon * 2;
    o.store_mode = tech == Technique::kLazySlicing ? StoreMode::kLazy
                                                   : StoreMode::kEager;
    o.force_store_tuples = true;
    auto g = std::make_unique<GeneralSlicingOperator>(o);
    g->AddAggregation(MakeAggregation("sum"));
    for (const WindowPtr& w : windows) g->AddWindow(w);
    op = std::move(g);
  } else if (tech == Technique::kBuckets && force_tuples) {
    auto b = std::make_unique<BucketsOperator>(false, kHorizon * 2,
                                               BucketsOperator::BucketKind::kTuple);
    b->AddAggregation(MakeAggregation("sum"));
    for (const WindowPtr& w : windows) b->AddWindow(w);
    op = std::move(b);
  } else {
    op = MakeTechnique(tech, false, kHorizon * 2, windows, {"sum"});
  }
  const Time step = kHorizon / kTuples;
  for (int64_t i = 0; i < kTuples; ++i) {
    Tuple t;
    t.ts = i * step;
    t.value = static_cast<double>(i % 100);
    t.seq = static_cast<uint64_t>(i);
    op->ProcessTuple(t);
  }
  return op;
}

void Report(const std::string& row, size_t measured, double modeled) {
  std::printf("table1,%s,measured,%zu,bytes\n", row.c_str(), measured);
  std::printf("table1,%s,modeled,%.0f,bytes\n", row.c_str(), modeled);
  std::printf("table1,%s,ratio,%.3f,x\n", row.c_str(),
              static_cast<double>(measured) / modeled);
}

void Run() {
  PrintHeader("table1", "memory usage vs closed-form model");
  using M = MemoryModel;
  const double tuple_bytes = static_cast<double>(M::kTupleBytes);
  const double agg_bytes = static_cast<double>(M::kPartialBytes);
  const double slice_bytes =
      static_cast<double>(M::kSliceMetaBytes) + agg_bytes;
  const double bucket_bytes = static_cast<double>(M::kBucketMetaBytes);

  // Row 1: tuple buffer.
  Report("1-tuple-buffer", Feed(Technique::kTupleBuffer, false)->MemoryUsageBytes(),
         kTuples * tuple_bytes);
  // Row 2: aggregate tree on tuples: the flat tree allocates one inner
  // partial per physical leaf slot (capacity = next power of two).
  Report("2-aggregate-tree",
         Feed(Technique::kAggregateTree, false)->MemoryUsageBytes(),
         kTuples * tuple_bytes + 32768 * agg_bytes);
  // Row 3: aggregate buckets.
  Report("3-aggregate-buckets",
         Feed(Technique::kBuckets, false)->MemoryUsageBytes(),
         kSlices * (agg_bytes + bucket_bytes));
  // Row 4: tuple buckets (tumbling windows: no replication). Measured
  // bytes exceed the model by the growth factor of the tuple vectors
  // (capacity vs size), bounded by 2x.
  Report("4-tuple-buckets", Feed(Technique::kBuckets, true)->MemoryUsageBytes(),
         kTuples * tuple_bytes + kSlices * (agg_bytes + bucket_bytes));
  // Row 5: lazy slicing.
  Report("5-lazy-slicing",
         Feed(Technique::kLazySlicing, false)->MemoryUsageBytes(),
         kSlices * slice_bytes);
  // Row 6: eager slicing (tree over slices; capacity next power of two).
  Report("6-eager-slicing",
         Feed(Technique::kEagerSlicing, false)->MemoryUsageBytes(),
         kSlices * slice_bytes + 256 * agg_bytes);
  // Row 7: lazy slicing retaining tuples.
  Report("7-lazy-slicing-tuples",
         Feed(Technique::kLazySlicing, true)->MemoryUsageBytes(),
         kTuples * tuple_bytes + kSlices * slice_bytes);
  // Row 8: eager slicing retaining tuples.
  Report("8-eager-slicing-tuples",
         Feed(Technique::kEagerSlicing, true)->MemoryUsageBytes(),
         kTuples * tuple_bytes + kSlices * slice_bytes + 256 * agg_bytes);
}

}  // namespace
}  // namespace bench
}  // namespace scotty

int main() {
  scotty::bench::Run();
  return 0;
}
