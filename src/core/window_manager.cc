#include "core/window_manager.h"

#include <algorithm>

namespace scotty {

namespace {

class Collector : public WindowCallback {
 public:
  void OnWindow(Time start, Time end) override {
    windows.push_back({start, end});
  }
  std::vector<std::pair<Time, Time>> windows;
};

}  // namespace

Partial WindowManager::RangePartial(size_t agg, Time start, Time end) {
  if (queries_->splits_possible) {
    // Forward-context-aware window edges may fall strictly inside slices;
    // materialize them (split + recompute from tuples) before combining.
    slice_mgr_->EnsureEdge(start);
    slice_mgr_->EnsureEdge(end);
  }
  return store_->QueryRange(agg, start, end);
}

Value WindowManager::ComputeWindow(size_t agg, Time start, Time end) {
  return store_->fns()[agg]->Lower(RangePartial(agg, start, end));
}

void WindowManager::EmitAllAggs(int window_id, Time start, Time end,
                                bool is_update,
                                std::vector<WindowResult>* out) {
  for (size_t a = 0; a < store_->fns().size(); ++a) {
    WindowResult r;
    r.window_id = window_id;
    r.agg_id = static_cast<int>(a);
    r.start = start;
    r.end = end;
    r.value = ComputeWindow(a, start, end);
    r.is_update = is_update;
    out->push_back(std::move(r));
    if (is_update) {
      ++stats_->window_updates_emitted;
    } else {
      ++stats_->windows_emitted;
    }
  }
}

void WindowManager::Trigger(Time prev_wm, Time curr_wm,
                            std::vector<WindowResult>* out) {
  if (curr_wm <= prev_wm) return;
  for (size_t w = 0; w < queries_->windows.size(); ++w) {
    TriggerWindow(static_cast<int>(w), prev_wm, curr_wm, out);
  }
}

void WindowManager::TriggerWindow(int window_id, Time prev_wm, Time curr_wm,
                                  std::vector<WindowResult>* out) {
  if (curr_wm <= prev_wm) return;
  const WindowPtr& win = queries_->windows[static_cast<size_t>(window_id)];
  if (!QuerySet::OnTimeLane(win)) return;
  Collector c;
  win->TriggerWindows(c, prev_wm, curr_wm);
  for (const auto& [s, e] : c.windows) {
    EmitAllAggs(window_id, s, e, /*is_update=*/false, out);
  }
}

void WindowManager::EmitLateUpdates(Time ts, Time last_wm,
                                    const std::vector<char>* skip,
                                    std::vector<WindowResult>* out) {
  if (last_wm == kNoTime || ts > last_wm) return;
  for (size_t w = 0; w < queries_->windows.size(); ++w) {
    const WindowPtr& win = queries_->windows[w];
    if (!QuerySet::OnTimeLane(win)) continue;
    if (skip && w < skip->size() && (*skip)[w]) continue;
    Collector c;
    // Already-emitted windows end in (max(ts, floor), last_wm]; of those,
    // the ones containing the late tuple have start <= ts. The floor clamp
    // keeps windows from before the first observed point in time — which no
    // trigger ever emitted — from appearing as "updates".
    win->TriggerWindows(c, std::max(ts, wm_floor_), last_wm);
    for (const auto& [s, e] : c.windows) {
      if (s > ts) continue;
      EmitAllAggs(static_cast<int>(w), s, e, /*is_update=*/true, out);
    }
  }
}

void WindowManager::EmitChangedWindows(
    int window_id, const std::vector<std::pair<Time, Time>>& wins,
    Time last_wm, std::vector<WindowResult>* out) {
  if (last_wm == kNoTime) return;
  for (const auto& [s, e] : wins) {
    if (e > last_wm) continue;  // not emitted yet; the next trigger covers it
    if (wm_floor_ != kNoTime && e <= wm_floor_) continue;  // before the stream
    EmitAllAggs(window_id, s, e, /*is_update=*/true, out);
  }
}

}  // namespace scotty
