#ifndef SCOTTY_STATE_DELTA_LOG_H_
#define SCOTTY_STATE_DELTA_LOG_H_

// Append-only delta-log segments for incremental checkpoints (DESIGN.md §7).
//
// Each segment rides alongside one full base snapshot and holds the
// incremental barriers taken since that base. Layout of a segment file
// `<prefix>-<base_index>.dlog`:
//
//   offset  size  field
//   0       8     magic "SCTYDLOG"
//   8       4     format version (little-endian u32)
//   12      8     base snapshot barrier index (little-endian u64)
//   20      8     FNV-1a 64 checksum of bytes [8, 20) (little-endian u64)
//   28      ...   records
//
// Each record is a length-framed snapshot container:
//
//   0       4     record magic "DREC" (little-endian u32)
//   4       8     container size in bytes (little-endian u64)
//   12      n     snapshot container (see snapshot.h) whose state bytes are
//                 the operator's *delta* payload for that barrier
//
// The inner container carries its own magic/version/size/FNV-1a64, so a
// torn or bit-flipped tail fails validation exactly like a damaged full
// snapshot does. Records must form an epoch-continuous chain: record i
// carries barrier_index == base_index + 1 + i. Reading stops at the first
// record that is torn, corrupt, or out of epoch and returns the valid
// prefix — recovery then replays base + prefix, which is always a
// consistent barrier boundary because every record is appended and fsync'd
// as a unit after its barrier completes.

#include <cstdint>
#include <string>
#include <vector>

#include "state/snapshot.h"

namespace scotty {
namespace state {

inline constexpr char kDeltaLogMagic[8] = {'S', 'C', 'T', 'Y',
                                           'D', 'L', 'O', 'G'};
inline constexpr uint32_t kDeltaLogFormatVersion = 1;
inline constexpr uint32_t kDeltaRecordMagic = 0x44524543;  // "DREC"

/// One validated delta record: the barrier metadata plus the operator's
/// opaque delta payload.
struct DeltaRecord {
  CheckpointMetadata meta;
  std::string operator_name;
  std::vector<uint8_t> state;
};

/// Result of reading a segment: the base it extends and the valid
/// epoch-continuous record prefix. `torn` reports whether trailing bytes
/// (a partial append, corruption, or an out-of-epoch record) were
/// discarded.
struct DeltaLogContents {
  uint64_t base_index = 0;
  std::vector<DeltaRecord> records;
  bool torn = false;
};

/// Canonical segment path for the deltas extending base `base_index`.
std::string DeltaLogPath(const std::string& prefix, uint64_t base_index);

/// Appends framed delta records to one segment file. The descriptor stays
/// open across appends; Sync() is the group-commit point — several appended
/// records become durable with a single fsync.
class DeltaLogWriter {
 public:
  DeltaLogWriter() = default;
  ~DeltaLogWriter() { Close(); }
  DeltaLogWriter(const DeltaLogWriter&) = delete;
  DeltaLogWriter& operator=(const DeltaLogWriter&) = delete;

  /// Creates (truncating any previous file at) `path` and writes the
  /// segment header. Returns false on I/O failure.
  bool Open(const std::string& path, uint64_t base_index);

  bool is_open() const { return fd_ >= 0; }
  uint64_t base_index() const { return base_index_; }
  const std::string& path() const { return path_; }

  /// Appends one record (not yet durable; see Sync). Returns false on I/O
  /// failure, after which the segment must be considered unusable.
  bool Append(const CheckpointMetadata& meta, const std::string& operator_name,
              const std::vector<uint8_t>& delta_state);

  /// fsyncs everything appended so far. Returns false on I/O failure.
  bool Sync();

  void Close();

 private:
  int fd_ = -1;
  uint64_t base_index_ = 0;
  std::string path_;
};

/// Reads and validates a segment. Returns false if the file is missing,
/// unreadable, or its header is damaged. On success, `out->records` holds
/// the valid epoch-continuous prefix and `out->torn` reports whether any
/// tail bytes were rejected.
bool ReadDeltaLog(const std::string& path, DeltaLogContents* out);

}  // namespace state
}  // namespace scotty

#endif  // SCOTTY_STATE_DELTA_LOG_H_
