#include "core/slice.h"

#include <algorithm>
#include <cassert>

namespace scotty {

namespace {

bool TupleLess(const Tuple& a, const Tuple& b) {
  if (a.ts != b.ts) return a.ts < b.ts;
  return a.seq < b.seq;
}

}  // namespace

void Slice::AddTuple(const Tuple& t,
                     const std::vector<AggregateFunctionPtr>& fns,
                     bool store_tuple) {
  assert(fns.size() == aggs_.size());
  for (size_t i = 0; i < fns.size(); ++i) {
    fns[i]->Combine(aggs_[i], fns[i]->Lift(t));
  }
  if (store_tuple) RawInsertSorted(t);
  NoteTuple(t);
}

void Slice::AddTupleBatch(std::span<const Tuple> batch,
                          const std::vector<AggregateFunctionPtr>& fns,
                          bool store_tuples) {
  if (batch.empty()) return;
  assert(fns.size() == aggs_.size());
  for (size_t i = 0; i < fns.size(); ++i) {
    fns[i]->LiftCombineBatch(batch, aggs_[i]);
  }
  if (store_tuples) {
    tuples_.reserve(tuples_.size() + batch.size());
    for (const Tuple& t : batch) {
      // In-order runs append; fall back to sorted insert for stragglers so
      // the (ts, seq) invariant holds for any caller.
      if (tuples_.empty() || !TupleLess(t, tuples_.back())) {
        tuples_.push_back(t);
      } else {
        RawInsertSorted(t);
      }
    }
  }
  for (const Tuple& t : batch) NoteTuple(t);
}

void Slice::Reset(Time start, Time end, size_t num_aggs) {
  start_ = start;
  end_ = end;
  t_first_ = t_last_ = kNoTime;
  tuple_count_ = 0;
  aggs_.assign(num_aggs, Partial{});
  tuples_.clear();
}

void Slice::RecomputeFromTuples(const std::vector<AggregateFunctionPtr>& fns) {
  for (size_t i = 0; i < fns.size(); ++i) {
    Partial acc;
    for (const Tuple& t : tuples_) fns[i]->Combine(acc, fns[i]->Lift(t));
    aggs_[i] = std::move(acc);
  }
}

void Slice::MergeWith(const Slice& other,
                      const std::vector<AggregateFunctionPtr>& fns) {
  end_ = std::max(end_, other.end_);
  start_ = std::min(start_, other.start_);
  for (size_t i = 0; i < fns.size(); ++i) {
    fns[i]->Combine(aggs_[i], other.aggs_[i]);
  }
  if (!other.tuples_.empty()) {
    // Both slices keep tuples sorted; `other` covers a later range, but
    // out-of-order metadata moves can make ranges touch, so merge-sort to
    // stay safe.
    std::vector<Tuple> merged;
    merged.reserve(tuples_.size() + other.tuples_.size());
    std::merge(tuples_.begin(), tuples_.end(), other.tuples_.begin(),
               other.tuples_.end(), std::back_inserter(merged), TupleLess);
    tuples_ = std::move(merged);
  }
  if (other.t_first_ != kNoTime &&
      (t_first_ == kNoTime || other.t_first_ < t_first_)) {
    t_first_ = other.t_first_;
  }
  if (other.t_last_ != kNoTime &&
      (t_last_ == kNoTime || other.t_last_ > t_last_)) {
    t_last_ = other.t_last_;
  }
  tuple_count_ += other.tuple_count_;
}

Slice Slice::SplitAt(Time t, const std::vector<AggregateFunctionPtr>& fns) {
  assert(start_ < t && t < end_);
  Slice right(t, end_, aggs_.size());
  end_ = t;

  if (tuples_.empty()) {
    // Metadata-only split: legal only when all tuples fall on one side.
    assert(empty() || t_last_ < t || t_first_ >= t);
    if (!empty() && t_first_ >= t) {
      // Everything moves to the right half.
      right.aggs_ = std::move(aggs_);
      aggs_.assign(right.aggs_.size(), Partial{});
      right.t_first_ = t_first_;
      right.t_last_ = t_last_;
      right.tuple_count_ = tuple_count_;
      t_first_ = t_last_ = kNoTime;
      tuple_count_ = 0;
    }
    return right;
  }

  // Real split: partition tuples at t and recompute both halves from scratch
  // (the expensive operation the paper warns about).
#ifdef SCOTTY_INJECT_SPLIT_BUG
  // Fuzzer self-test fault: tuples exactly at the split time stay in the
  // left slice, i.e. [start, t) silently becomes [start, t].
  auto pivot = std::lower_bound(
      tuples_.begin(), tuples_.end(), t,
      [](const Tuple& a, Time x) { return a.ts <= x; });
#else
  auto pivot = std::lower_bound(
      tuples_.begin(), tuples_.end(), t,
      [](const Tuple& a, Time x) { return a.ts < x; });
#endif
  right.tuples_.assign(pivot, tuples_.end());
  tuples_.erase(pivot, tuples_.end());

  auto reset_meta = [](Slice& s) {
    s.tuple_count_ = s.tuples_.size();
    if (s.tuples_.empty()) {
      s.t_first_ = s.t_last_ = kNoTime;
    } else {
      s.t_first_ = s.tuples_.front().ts;
      s.t_last_ = s.tuples_.back().ts;
    }
  };
  reset_meta(*this);
  reset_meta(right);
  RecomputeFromTuples(fns);
  right.RecomputeFromTuples(fns);
  return right;
}

Tuple Slice::PopLastTuple() {
  assert(!tuples_.empty());
  Tuple t = tuples_.back();
  tuples_.pop_back();
  --tuple_count_;
  if (tuples_.empty()) {
    t_first_ = t_last_ = kNoTime;
  } else {
    t_last_ = tuples_.back().ts;
  }
  return t;
}

void Slice::InsertTupleOnly(const Tuple& t) {
  RawInsertSorted(t);
  NoteTuple(t);
}

void Slice::RawInsertSorted(const Tuple& t) {
  auto it = std::upper_bound(tuples_.begin(), tuples_.end(), t, TupleLess);
  tuples_.insert(it, t);
}

size_t Slice::MemoryBytes() const {
  size_t bytes = MemoryModel::kSliceMetaBytes;
  for (const Partial& p : aggs_) bytes += p.TotalBytes();
  bytes += tuples_.capacity() * MemoryModel::kTupleBytes;
  return bytes;
}

}  // namespace scotty
