file(REMOVE_RECURSE
  "CMakeFiles/scotty_baseline_tests.dir/baselines_test.cc.o"
  "CMakeFiles/scotty_baseline_tests.dir/baselines_test.cc.o.d"
  "scotty_baseline_tests"
  "scotty_baseline_tests.pdb"
  "scotty_baseline_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scotty_baseline_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
