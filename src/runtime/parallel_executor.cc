#include "runtime/parallel_executor.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "runtime/keyed_operator.h"
#include "state/serde.h"

namespace scotty {

namespace {

// Combined parallel snapshot blob: tag + version + worker count + one
// length-prefixed state per worker. The tag makes foreign bytes fail fast;
// the version gates format evolution (v2 added rescaled restore).
constexpr uint32_t kParallelSnapshotTag = 0x50534E50;  // "PSNP"
constexpr uint8_t kParallelSnapshotVersion = 2;

}  // namespace

SpscQueue::SpscQueue(size_t capacity)
    : ring_(capacity), mask_(capacity - 1) {
  if (capacity == 0 || (capacity & (capacity - 1)) != 0) {
    std::fprintf(stderr,
                 "SpscQueue: capacity must be a power of two, got %zu\n",
                 capacity);
    std::abort();
  }
}

void SpscQueue::Push(const Item& item) {
  const uint64_t tail = tail_.load(std::memory_order_relaxed);
  while (tail - head_cache_ >= ring_.size()) {
    head_cache_ = head_.load(std::memory_order_acquire);
    if (tail - head_cache_ >= ring_.size()) {
      std::this_thread::yield();  // backpressure
    }
  }
  ring_[tail & mask_] = item;
  tail_.store(tail + 1, std::memory_order_release);
}

bool SpscQueue::Pop(Item* out) {
  const uint64_t head = head_.load(std::memory_order_relaxed);
  if (head == tail_cache_) {
    tail_cache_ = tail_.load(std::memory_order_acquire);
    if (head == tail_cache_) return false;
  }
  *out = ring_[head & mask_];
  head_.store(head + 1, std::memory_order_release);
  return true;
}

void SpscQueue::PushBatch(const Item* items, size_t n) {
  size_t done = 0;
  while (done < n) {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    uint64_t free = ring_.size() - (tail - head_cache_);
    while (free == 0) {
      head_cache_ = head_.load(std::memory_order_acquire);
      free = ring_.size() - (tail - head_cache_);
      if (free == 0) std::this_thread::yield();  // backpressure
    }
    const size_t chunk = std::min(n - done, static_cast<size_t>(free));
    for (size_t k = 0; k < chunk; ++k) {
      ring_[(tail + k) & mask_] = items[done + k];
    }
    tail_.store(tail + chunk, std::memory_order_release);
    done += chunk;
  }
}

size_t SpscQueue::PopBatch(Item* out, size_t max_n) {
  const uint64_t head = head_.load(std::memory_order_relaxed);
  uint64_t avail = tail_cache_ - head;
  if (avail == 0) {
    tail_cache_ = tail_.load(std::memory_order_acquire);
    avail = tail_cache_ - head;
    if (avail == 0) return 0;
  }
  const size_t chunk = std::min(max_n, static_cast<size_t>(avail));
  for (size_t k = 0; k < chunk; ++k) {
    out[k] = ring_[(head + k) & mask_];
  }
  head_.store(head + chunk, std::memory_order_release);
  return chunk;
}

ParallelExecutor::ParallelExecutor(
    size_t num_workers,
    std::function<std::unique_ptr<WindowOperator>()> factory)
    : ParallelExecutor(num_workers, std::move(factory), Options{}) {}

ParallelExecutor::ParallelExecutor(
    size_t num_workers,
    std::function<std::unique_ptr<WindowOperator>()> factory, Options opts)
    : opts_(opts), factory_(std::move(factory)) {
  for (size_t i = 0; i < num_workers; ++i) {
    operators_.push_back(factory_());
    queues_.push_back(std::make_unique<SpscQueue>(opts_.queue_capacity));
  }
  staging_.resize(num_workers);
  if (opts_.batch_size > 1) {
    for (auto& s : staging_) s.reserve(opts_.batch_size);
  }
  workers_.reserve(num_workers);
}

ParallelExecutor::~ParallelExecutor() {
  if (started_ && !finished_) Finish();
}

void ParallelExecutor::Start() {
  assert(!started_);
  started_ = true;
  for (size_t i = 0; i < operators_.size(); ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

size_t ParallelExecutor::WorkerFor(const Tuple& t) const {
  // Key partitioning: consistent routing keeps all tuples of a key on one
  // worker, so per-key window semantics are preserved.
  return static_cast<size_t>(
             static_cast<uint64_t>(t.key) * 0x9E3779B97F4A7C15ULL >> 32) %
         queues_.size();
}

void ParallelExecutor::FlushStaging(size_t w) {
  std::vector<SpscQueue::Item>& s = staging_[w];
  if (s.empty()) return;
  queues_[w]->PushBatch(s.data(), s.size());
  s.clear();
}

void ParallelExecutor::FlushAllStaging() {
  for (size_t w = 0; w < staging_.size(); ++w) FlushStaging(w);
}

void ParallelExecutor::Push(const Tuple& t) {
  const size_t w = WorkerFor(t);
  SpscQueue::Item item;
  item.kind = SpscQueue::Item::Kind::kTuple;
  item.tuple = t;
  if (opts_.batch_size <= 1) {
    queues_[w]->Push(item);
    return;
  }
  staging_[w].push_back(item);
  if (staging_[w].size() >= opts_.batch_size) FlushStaging(w);
}

void ParallelExecutor::PushBatch(std::span<const Tuple> tuples) {
  for (const Tuple& t : tuples) Push(t);
}

void ParallelExecutor::PushWatermark(Time wm) {
  // Staged tuples precede the watermark in arrival order; transfer them
  // first so every worker observes the exact unbatched item sequence.
  FlushAllStaging();
  SpscQueue::Item item;
  item.kind = SpscQueue::Item::Kind::kWatermark;
  item.watermark = wm;
  for (auto& q : queues_) q->Push(item);
}

void ParallelExecutor::Finish() {
  if (!started_ || finished_) return;
  FlushAllStaging();
  SpscQueue::Item stop;
  stop.kind = SpscQueue::Item::Kind::kStop;
  for (auto& q : queues_) q->Push(stop);
  for (std::thread& t : workers_) t.join();
  finished_ = true;
}

std::vector<uint8_t> ParallelExecutor::SnapshotAtBarrier() {
  assert(started_ && !finished_);
  for (const auto& op : operators_) {
    if (!op->SupportsSnapshot()) return {};
  }
  snap_slots_.assign(queues_.size(), {});
  snap_remaining_.store(queues_.size(), std::memory_order_release);
  // Staged tuples precede the barrier, exactly like PushWatermark.
  FlushAllStaging();
  SpscQueue::Item item;
  item.kind = SpscQueue::Item::Kind::kSnapshot;
  for (auto& q : queues_) q->Push(item);
  while (snap_remaining_.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
  // Combine per-worker states into one length-prefixed blob. Worker count
  // is recorded so restore can re-partition (keyed state) or reject (any
  // other) a topology mismatch.
  std::vector<uint8_t> blob = BuildParallelSnapshotBlob(snap_slots_);
  snap_slots_.clear();
  return blob;
}

bool ParallelExecutor::RestoreOperators(const std::vector<uint8_t>& blob,
                                        std::string* error) {
  assert(!started_);
  auto fail = [&](const std::string& why) {
    // Never leave a half-restored topology behind: rebuild every operator
    // fresh so the executor stays usable for a from-scratch run.
    for (auto& op : operators_) op = factory_();
    if (error != nullptr) *error = why;
    return false;
  };
  std::vector<std::vector<uint8_t>> states;
  std::string parse_err;
  if (!ParseParallelSnapshotBlob(blob, &states, &parse_err)) {
    return fail(parse_err);
  }
  if (states.size() != operators_.size()) {
    // Rescaled restore: W → W′ works when (and only when) the states are
    // keyed, because keyed state decomposes into per-key units that re-route
    // with the same hash live tuples use.
    std::string why;
    std::vector<std::vector<uint8_t>> rescaled;
    if (!RepartitionKeyedStates(states, operators_.size(), &rescaled, &why)) {
      return fail("worker count mismatch: snapshot has " +
                  std::to_string(states.size()) + ", executor has " +
                  std::to_string(operators_.size()) + "; " + why);
    }
    states = std::move(rescaled);
  }
  for (size_t i = 0; i < operators_.size(); ++i) {
    state::Reader worker_r(states[i]);
    operators_[i]->DeserializeState(worker_r);
    if (!worker_r.ok() || !worker_r.AtEnd()) {
      return fail("worker " + std::to_string(i) + " state decode failed");
    }
  }
  return true;
}

std::vector<uint8_t> BuildParallelSnapshotBlob(
    const std::vector<std::vector<uint8_t>>& worker_states) {
  state::Writer w;
  w.Tag(kParallelSnapshotTag);
  w.U8(kParallelSnapshotVersion);
  w.U64(worker_states.size());
  for (const std::vector<uint8_t>& s : worker_states) {
    w.U64(s.size());
    w.Bytes(s.data(), s.size());
  }
  return w.Take();
}

bool ParseParallelSnapshotBlob(const std::vector<uint8_t>& blob,
                               std::vector<std::vector<uint8_t>>* out,
                               std::string* error) {
  auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  state::Reader r(blob);
  r.Tag(kParallelSnapshotTag);
  const uint8_t version = r.U8();
  if (!r.ok() || version != kParallelSnapshotVersion) {
    return fail("not a parallel snapshot blob (bad tag or version)");
  }
  const uint64_t workers = r.U64();
  if (!r.ok() || workers == 0 || workers > r.remaining()) {
    return fail("parallel snapshot header corrupt");
  }
  std::vector<std::vector<uint8_t>> states(static_cast<size_t>(workers));
  for (size_t i = 0; i < states.size(); ++i) {
    const uint64_t size = r.U64();
    if (!r.ok() || size > r.remaining()) {
      return fail("worker " + std::to_string(i) + " state truncated");
    }
    states[i].resize(static_cast<size_t>(size));
    r.Bytes(states[i].data(), states[i].size());
  }
  if (!r.AtEnd()) return fail("trailing bytes after worker states");
  *out = std::move(states);
  return true;
}

bool RepartitionKeyedStates(
    const std::vector<std::vector<uint8_t>>& worker_states,
    size_t new_workers, std::vector<std::vector<uint8_t>>* out,
    std::string* error) {
  auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  if (new_workers == 0) return fail("cannot re-partition onto zero workers");
  std::vector<KeyedWindowOperator::KeyedStateParts> buckets(new_workers);
  Time last_wm = kNoTime;
  for (size_t i = 0; i < worker_states.size(); ++i) {
    KeyedWindowOperator::KeyedStateParts parts;
    if (!KeyedWindowOperator::ParseKeyedState(worker_states[i], &parts)) {
      return fail("worker " + std::to_string(i) +
                  " state is not a keyed payload (non-keyed operator state "
                  "cannot be re-partitioned)");
    }
    // Watermarks were broadcast, so all workers agree except ones that
    // never saw one; merge to the furthest progress.
    last_wm = std::max(last_wm, parts.last_wm);
    for (auto& kv : parts.keys) {
      const size_t w = ParallelExecutor::WorkerIndexForKey(kv.first,
                                                           new_workers);
      buckets[w].keys.push_back(std::move(kv));
    }
    for (auto& res : parts.results) {
      // Pending (undrained) results re-emit from whichever worker owns the
      // key after the rescale — exactly once, like the tuples that formed
      // them would.
      const size_t w =
          ParallelExecutor::WorkerIndexForKey(res.key, new_workers);
      buckets[w].results.push_back(std::move(res));
    }
  }
  out->clear();
  out->reserve(new_workers);
  for (KeyedWindowOperator::KeyedStateParts& b : buckets) {
    b.last_wm = last_wm;
    out->push_back(KeyedWindowOperator::BuildKeyedState(std::move(b)));
  }
  return true;
}

void ParallelExecutor::WorkerLoop(size_t i) {
  SpscQueue& q = *queues_[i];
  WindowOperator& op = *operators_[i];
  const size_t batch = std::max<size_t>(size_t{1}, opts_.batch_size);
  std::vector<SpscQueue::Item> items(batch);
  std::vector<Tuple> run;  // contiguous tuple run handed to the operator
  run.reserve(batch);
  std::vector<WindowResult> drained;
  uint64_t results = 0;
  while (true) {
    const size_t got = q.PopBatch(items.data(), batch);
    if (got == 0) {
      std::this_thread::yield();
      continue;
    }
    size_t k = 0;
    while (k < got) {
      switch (items[k].kind) {
        case SpscQueue::Item::Kind::kTuple: {
          run.clear();
          while (k < got && items[k].kind == SpscQueue::Item::Kind::kTuple) {
            run.push_back(items[k].tuple);
            ++k;
          }
          op.ProcessTupleBatch(run);
          break;
        }
        case SpscQueue::Item::Kind::kWatermark:
          op.ProcessWatermark(items[k].watermark);
          drained.clear();
          op.TakeResultsInto(&drained);
          results += drained.size();
          ++k;
          break;
        case SpscQueue::Item::Kind::kSnapshot: {
          // Serialize between two items of this worker's own stream: the
          // state captured here is exactly the state a sequential run of
          // this worker's item sequence would have at this point.
          state::Writer w;
          op.SerializeState(w);
          snap_slots_[i] = w.Take();
          snap_remaining_.fetch_sub(1, std::memory_order_acq_rel);
          ++k;
          break;
        }
        case SpscQueue::Item::Kind::kStop:
          drained.clear();
          op.TakeResultsInto(&drained);
          results += drained.size();
          total_results_.fetch_add(results);
          return;
      }
    }
  }
}

size_t ParallelExecutor::MemoryUsageBytes() const {
  size_t bytes = 0;
  for (const auto& op : operators_) bytes += op->MemoryUsageBytes();
  return bytes;
}

}  // namespace scotty
