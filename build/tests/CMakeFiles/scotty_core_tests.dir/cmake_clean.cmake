file(REMOVE_RECURSE
  "CMakeFiles/scotty_core_tests.dir/count_windows_test.cc.o"
  "CMakeFiles/scotty_core_tests.dir/count_windows_test.cc.o.d"
  "CMakeFiles/scotty_core_tests.dir/multi_measure_test.cc.o"
  "CMakeFiles/scotty_core_tests.dir/multi_measure_test.cc.o.d"
  "CMakeFiles/scotty_core_tests.dir/punctuation_test.cc.o"
  "CMakeFiles/scotty_core_tests.dir/punctuation_test.cc.o.d"
  "CMakeFiles/scotty_core_tests.dir/session_test.cc.o"
  "CMakeFiles/scotty_core_tests.dir/session_test.cc.o.d"
  "CMakeFiles/scotty_core_tests.dir/slicer_test.cc.o"
  "CMakeFiles/scotty_core_tests.dir/slicer_test.cc.o.d"
  "CMakeFiles/scotty_core_tests.dir/slicing_basic_test.cc.o"
  "CMakeFiles/scotty_core_tests.dir/slicing_basic_test.cc.o.d"
  "CMakeFiles/scotty_core_tests.dir/slicing_ooo_test.cc.o"
  "CMakeFiles/scotty_core_tests.dir/slicing_ooo_test.cc.o.d"
  "CMakeFiles/scotty_core_tests.dir/store_test.cc.o"
  "CMakeFiles/scotty_core_tests.dir/store_test.cc.o.d"
  "scotty_core_tests"
  "scotty_core_tests.pdb"
  "scotty_core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scotty_core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
