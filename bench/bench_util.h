#ifndef SCOTTY_BENCH_BENCH_UTIL_H_
#define SCOTTY_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "aggregates/registry.h"
#include "common/tuple_batch.h"
#include "baselines/aggregate_tree.h"
#include "baselines/buckets.h"
#include "baselines/pairs.h"
#include "baselines/tuple_buffer.h"
#include "core/general_slicing_operator.h"
#include "datagen/generators.h"
#include "datagen/ooo_injector.h"
#include "datagen/workloads.h"

namespace scotty {
namespace bench {

/// Techniques compared across the evaluation (paper Section 6.1 baselines).
enum class Technique {
  kLazySlicing,
  kEagerSlicing,
  kTupleBuffer,
  kAggregateTree,
  kBuckets,
  kPairs,
  kCutty,
};

inline const char* TechniqueName(Technique t) {
  switch (t) {
    case Technique::kLazySlicing:
      return "lazy-slicing";
    case Technique::kEagerSlicing:
      return "eager-slicing";
    case Technique::kTupleBuffer:
      return "tuple-buffer";
    case Technique::kAggregateTree:
      return "aggregate-tree";
    case Technique::kBuckets:
      return "buckets";
    case Technique::kPairs:
      return "pairs";
    case Technique::kCutty:
      return "cutty";
  }
  return "?";
}

/// Builds a fully-wired operator for one technique.
inline std::unique_ptr<WindowOperator> MakeTechnique(
    Technique t, bool stream_in_order, Time allowed_lateness,
    const std::vector<WindowPtr>& windows,
    const std::vector<std::string>& aggs) {
  auto add_all = [&](auto& op) {
    for (const std::string& a : aggs) op.AddAggregation(MakeAggregation(a));
    for (const WindowPtr& w : windows) op.AddWindow(w);
  };
  switch (t) {
    case Technique::kLazySlicing:
    case Technique::kEagerSlicing: {
      GeneralSlicingOperator::Options o;
      o.stream_in_order = stream_in_order;
      o.allowed_lateness = allowed_lateness;
      o.store_mode = t == Technique::kLazySlicing ? StoreMode::kLazy
                                                  : StoreMode::kEager;
      auto op = std::make_unique<GeneralSlicingOperator>(o);
      add_all(*op);
      return op;
    }
    case Technique::kTupleBuffer: {
      auto op = std::make_unique<TupleBufferOperator>(stream_in_order,
                                                      allowed_lateness);
      add_all(*op);
      return op;
    }
    case Technique::kAggregateTree: {
      auto op = std::make_unique<AggregateTreeOperator>(stream_in_order,
                                                        allowed_lateness);
      add_all(*op);
      return op;
    }
    case Technique::kBuckets: {
      auto op = std::make_unique<BucketsOperator>(stream_in_order,
                                                  allowed_lateness);
      add_all(*op);
      return op;
    }
    case Technique::kPairs: {
      auto op = std::make_unique<PairsOperator>();
      add_all(*op);
      return op;
    }
    case Technique::kCutty: {
      auto op = std::make_unique<CuttyOperator>();
      add_all(*op);
      return op;
    }
  }
  return nullptr;
}

struct ThroughputResult {
  uint64_t tuples = 0;
  double seconds = 0.0;
  uint64_t results = 0;

  double TuplesPerSecond() const {
    return seconds > 0 ? static_cast<double>(tuples) / seconds : 0.0;
  }
};

/// Drives `src` into `op` until either `max_tuples` tuples were processed or
/// `max_seconds` wall time elapsed (whichever first). Slow baselines thus
/// stay affordable while fast techniques get a full measurement. Watermarks
/// are injected every `wm_every` tuples with `wm_delay` slack (0 disables).
inline ThroughputResult MeasureThroughput(WindowOperator& op, TupleSource& src,
                                          uint64_t max_tuples,
                                          double max_seconds,
                                          uint64_t wm_every = 1024,
                                          Time wm_delay = 2000) {
  ThroughputResult r;
  Time max_ts = kNoTime;
  Tuple t;
  const auto start = std::chrono::steady_clock::now();
  auto elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
  uint64_t i = 0;
  while (i < max_tuples && src.Next(&t)) {
    op.ProcessTuple(t);
    if (t.ts > max_ts) max_ts = t.ts;
    ++i;
    if (wm_every > 0 && i % wm_every == 0) {
      op.ProcessWatermark(max_ts - wm_delay);
      r.results += op.TakeResults().size();
      // Check the clock only at watermark boundaries (cheap).
      if (elapsed() > max_seconds) break;
    }
    if ((i & 0x3FF) == 0 && elapsed() > max_seconds) break;
  }
  r.seconds = elapsed();
  if (max_ts != kNoTime) op.ProcessWatermark(max_ts);
  r.results += op.TakeResults().size();
  r.tuples = i;
  return r;
}

/// Like MeasureThroughput, but drives ingestion through ProcessTupleBatch in
/// blocks of `batch_size` tuples. Blocks never straddle a watermark boundary,
/// so the operator observes the exact tuple/watermark interleaving of the
/// per-tuple driver and the two measurements are semantically identical.
inline ThroughputResult MeasureThroughputBatched(
    WindowOperator& op, TupleSource& src, uint64_t max_tuples,
    double max_seconds, size_t batch_size, uint64_t wm_every = 1024,
    Time wm_delay = 2000) {
  ThroughputResult r;
  Time max_ts = kNoTime;
  std::vector<Tuple> buf;
  buf.reserve(batch_size);
  std::vector<WindowResult> drained;
  const auto start = std::chrono::steady_clock::now();
  auto elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
  uint64_t i = 0;
  bool exhausted = false;
  while (i < max_tuples && !exhausted) {
    uint64_t limit = std::min<uint64_t>(batch_size, max_tuples - i);
    if (wm_every > 0) limit = std::min<uint64_t>(limit, wm_every - i % wm_every);
    buf.clear();
    Tuple t;
    while (buf.size() < limit && src.Next(&t)) {
      if (t.ts > max_ts) max_ts = t.ts;
      buf.push_back(t);
    }
    if (buf.empty()) break;
    op.ProcessTupleBatch(buf);
    i += buf.size();
    exhausted = buf.size() < limit;
    if (wm_every > 0 && i % wm_every == 0) {
      op.ProcessWatermark(max_ts - wm_delay);
      drained.clear();
      op.TakeResultsInto(&drained);
      r.results += drained.size();
    }
    if (elapsed() > max_seconds) break;
  }
  r.seconds = elapsed();
  if (max_ts != kNoTime) op.ProcessWatermark(max_ts);
  drained.clear();
  op.TakeResultsInto(&drained);
  r.results += drained.size();
  r.tuples = i;
  return r;
}

/// Pre-generated replay measurements (the `throughput_soa` figure).
///
/// Methodology: the whole stream is synthesized into a buffer BEFORE the
/// timer starts; the timed loop only slices blocks out of it. This isolates
/// operator ingest cost from stream synthesis — the generator's per-tuple
/// work would otherwise put a ceiling on the measurement once the operator
/// sustains ~100M tuples/s. Replay rows (aos vs soa) are therefore directly
/// comparable with each other; against the inline-generation figures
/// (MeasureThroughput*) they are comparable only directionally.
///
/// Row-major replay: blocks of `batch_size` through ProcessTupleBatch.
inline ThroughputResult MeasureThroughputReplayAoS(
    WindowOperator& op, const std::vector<Tuple>& stream, size_t batch_size,
    uint64_t wm_every = 0, Time wm_delay = 2000) {
  ThroughputResult r;
  Time max_ts = kNoTime;
  std::vector<WindowResult> drained;
  const auto start = std::chrono::steady_clock::now();
  const size_t n = stream.size();
  for (size_t i = 0; i < n;) {
    size_t limit = std::min(batch_size, n - i);
    if (wm_every > 0) {
      limit = std::min<size_t>(limit, wm_every - i % wm_every);
    }
    op.ProcessTupleBatch({stream.data() + i, limit});
    for (size_t k = 0; k < limit; ++k) {
      if (stream[i + k].ts > max_ts) max_ts = stream[i + k].ts;
    }
    i += limit;
    if (wm_every > 0 && i % wm_every == 0) {
      op.ProcessWatermark(max_ts - wm_delay);
      drained.clear();
      op.TakeResultsInto(&drained);
      r.results += drained.size();
    }
  }
  if (max_ts != kNoTime) op.ProcessWatermark(max_ts);
  r.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            start)
                  .count();
  drained.clear();
  op.TakeResultsInto(&drained);
  r.results += drained.size();
  r.tuples = n;
  return r;
}

/// Columnar replay: SoA subviews of `batch_size` tuples through
/// ProcessTupleColumns. Zero copies in the timed loop — a subview is three
/// pointer adds.
inline ThroughputResult MeasureThroughputReplaySoA(
    WindowOperator& op, const TupleBatchSoA& stream, size_t batch_size,
    uint64_t wm_every = 0, Time wm_delay = 2000) {
  ThroughputResult r;
  Time max_ts = kNoTime;
  std::vector<WindowResult> drained;
  const Time* ts = stream.ts();
  const auto start = std::chrono::steady_clock::now();
  const size_t n = stream.size();
  for (size_t i = 0; i < n;) {
    size_t limit = std::min(batch_size, n - i);
    if (wm_every > 0) {
      limit = std::min<size_t>(limit, wm_every - i % wm_every);
    }
    op.ProcessTupleColumns(stream.Subview(i, limit));
    for (size_t k = 0; k < limit; ++k) {
      if (ts[i + k] > max_ts) max_ts = ts[i + k];
    }
    i += limit;
    if (wm_every > 0 && i % wm_every == 0) {
      op.ProcessWatermark(max_ts - wm_delay);
      drained.clear();
      op.TakeResultsInto(&drained);
      r.results += drained.size();
    }
  }
  if (max_ts != kNoTime) op.ProcessWatermark(max_ts);
  r.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            start)
                  .count();
  drained.clear();
  op.TakeResultsInto(&drained);
  r.results += drained.size();
  r.tuples = n;
  return r;
}

/// Uniform machine-readable output: one row per measured point.
inline void PrintRow(const std::string& figure, const std::string& series,
                     const std::string& x, double y,
                     const std::string& unit) {
  std::printf("%s,%s,%s,%.6g,%s\n", figure.c_str(), series.c_str(), x.c_str(),
              y, unit.c_str());
  std::fflush(stdout);
}

inline void PrintHeader(const std::string& figure, const std::string& title) {
  std::printf("# %s — %s\n", figure.c_str(), title.c_str());
  std::printf("# columns: figure,series,x,y,unit\n");
  std::fflush(stdout);
}

}  // namespace bench
}  // namespace scotty

#endif  // SCOTTY_BENCH_BENCH_UTIL_H_
