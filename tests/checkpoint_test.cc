// Checkpoint/restore subsystem (DESIGN.md §7): snapshot container format,
// serde failure modes, per-technique snapshot/restore bit-identity, keyed
// operator restore, pipeline-level restore, and crash injection.

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "aggregates/registry.h"
#include "baselines/aggregate_tree.h"
#include "baselines/buckets.h"
#include "baselines/tuple_buffer.h"
#include "core/general_slicing_operator.h"
#include "datagen/generators.h"
#include "runtime/checkpoint.h"
#include "runtime/keyed_operator.h"
#include "runtime/pipeline.h"
#include "state/snapshot.h"
#include "tests/test_util.h"
#include "windows/session.h"
#include "windows/sliding.h"
#include "windows/tumbling.h"

namespace scotty {
namespace {

namespace fs = std::filesystem;

using state::BuildSnapshot;
using state::CheckpointMetadata;
using state::ParseSnapshot;
using state::ReadSnapshotFile;
using state::WriteSnapshotFile;
using testutil::FinalResults;
using testutil::ResultKey;
using testutil::RunToFinalResults;
using testutil::T;
using testing::RunToFinalResultsCheckpointed;

std::string TempDir(const std::string& leaf) {
  // Suffix with the running test's name: ctest schedules gtest cases from this
  // binary concurrently, so a shared literal leaf would race on remove_all.
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  const std::string unique =
      info ? leaf + "_" + info->test_suite_name() + "_" + info->name() : leaf;
  const fs::path dir = fs::path(::testing::TempDir()) / unique;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

// ---------------------------------------------------------------------------
// Serde primitives.

TEST(Serde, RoundTripsEveryPrimitive) {
  state::Writer w;
  w.Tag(0xCAFEF00D);
  w.U8(7);
  w.U32(0xDEADBEEF);
  w.U64(~0ULL);
  w.I64(-42);
  w.F64(-0.0);
  w.Bool(true);
  w.Str("stream slicing");
  state::Reader r(w.bytes());
  r.Tag(0xCAFEF00D);
  EXPECT_EQ(r.U8(), 7);
  EXPECT_EQ(r.U32(), 0xDEADBEEFu);
  EXPECT_EQ(r.U64(), ~0ULL);
  EXPECT_EQ(r.I64(), -42);
  const double d = r.F64();
  EXPECT_EQ(std::signbit(d), true);  // -0.0 survives bit-exactly
  EXPECT_TRUE(r.Bool());
  EXPECT_EQ(r.Str(), "stream slicing");
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.AtEnd());
}

TEST(Serde, TagMismatchPoisonsReader) {
  state::Writer w;
  w.Tag(0x11111111);
  w.U64(99);
  state::Reader r(w.bytes());
  r.Tag(0x22222222);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.U64(), 0u);  // poisoned reads return zero, never throw
}

TEST(Serde, UnderflowLatchesFailure) {
  state::Writer w;
  w.U32(5);
  state::Reader r(w.bytes());
  EXPECT_EQ(r.U64(), 0u);  // only 4 bytes available
  EXPECT_FALSE(r.ok());
}

// ---------------------------------------------------------------------------
// Snapshot container.

std::vector<uint8_t> SampleBlob(CheckpointMetadata* meta_out = nullptr) {
  CheckpointMetadata meta;
  meta.source_offset = 123;
  meta.next_seq = 456;
  meta.max_ts = 789;
  meta.last_wm = 700;
  meta.barrier_index = 3;
  if (meta_out) *meta_out = meta;
  return BuildSnapshot(meta, "slicing-lazy", {1, 2, 3, 4, 5});
}

TEST(SnapshotContainer, RoundTrips) {
  CheckpointMetadata want;
  const std::vector<uint8_t> blob = SampleBlob(&want);
  CheckpointMetadata meta;
  std::string name;
  std::vector<uint8_t> st;
  ASSERT_TRUE(ParseSnapshot(blob, &meta, &name, &st));
  EXPECT_EQ(meta.source_offset, want.source_offset);
  EXPECT_EQ(meta.next_seq, want.next_seq);
  EXPECT_EQ(meta.max_ts, want.max_ts);
  EXPECT_EQ(meta.last_wm, want.last_wm);
  EXPECT_EQ(meta.barrier_index, want.barrier_index);
  EXPECT_EQ(name, "slicing-lazy");
  EXPECT_EQ(st, (std::vector<uint8_t>{1, 2, 3, 4, 5}));
}

TEST(SnapshotContainer, RejectsBadMagic) {
  std::vector<uint8_t> blob = SampleBlob();
  blob[0] ^= 0xFF;
  CheckpointMetadata meta;
  std::string name;
  std::vector<uint8_t> st;
  EXPECT_FALSE(ParseSnapshot(blob, &meta, &name, &st));
}

TEST(SnapshotContainer, RejectsFutureVersion) {
  std::vector<uint8_t> blob = SampleBlob();
  blob[8] = static_cast<uint8_t>(state::kSnapshotFormatVersion + 1);
  CheckpointMetadata meta;
  std::string name;
  std::vector<uint8_t> st;
  EXPECT_FALSE(ParseSnapshot(blob, &meta, &name, &st));
}

TEST(SnapshotContainer, RejectsTruncation) {
  const std::vector<uint8_t> blob = SampleBlob();
  CheckpointMetadata meta;
  std::string name;
  std::vector<uint8_t> st;
  for (size_t cut : {size_t{0}, size_t{7}, size_t{27}, blob.size() - 1}) {
    std::vector<uint8_t> shorter(blob.begin(), blob.begin() + cut);
    EXPECT_FALSE(ParseSnapshot(shorter, &meta, &name, &st)) << cut;
  }
}

TEST(SnapshotContainer, RejectsPayloadBitFlip) {
  CheckpointMetadata meta;
  std::string name;
  std::vector<uint8_t> st;
  const std::vector<uint8_t> blob = SampleBlob();
  // Flip one bit in every payload byte position in turn: the checksum must
  // catch each of them.
  for (size_t i = 28; i < blob.size(); ++i) {
    std::vector<uint8_t> bad = blob;
    bad[i] ^= 0x10;
    EXPECT_FALSE(ParseSnapshot(bad, &meta, &name, &st)) << i;
  }
}

TEST(SnapshotContainer, RejectsTrailingGarbage) {
  std::vector<uint8_t> blob = SampleBlob();
  blob.push_back(0xAB);
  CheckpointMetadata meta;
  std::string name;
  std::vector<uint8_t> st;
  EXPECT_FALSE(ParseSnapshot(blob, &meta, &name, &st));
}

TEST(SnapshotContainer, FileRoundTripAndMissingFile) {
  const std::string dir = TempDir("snap_files");
  const std::string path = dir + "/a.snap";
  const std::vector<uint8_t> blob = SampleBlob();
  ASSERT_TRUE(WriteSnapshotFile(path, blob));
  EXPECT_FALSE(fs::exists(path + ".tmp"));  // rename cleaned the temp file
  std::vector<uint8_t> back;
  ASSERT_TRUE(ReadSnapshotFile(path, &back));
  EXPECT_EQ(back, blob);
  EXPECT_FALSE(ReadSnapshotFile(dir + "/missing.snap", &back));
}

// ---------------------------------------------------------------------------
// Per-technique snapshot/restore bit-identity.

std::vector<Tuple> MakeStream(bool sorted) {
  std::vector<Tuple> out;
  Time ts = 0;
  for (int i = 0; i < 120; ++i) {
    ts += 1 + (i % 4);
    if (i % 17 == 0) ts += 12;  // gap: closes 7-unit sessions
    Tuple t = T(ts, 0.5 * (i % 23) - 3.0);
    out.push_back(t);
  }
  if (!sorted) {
    // Displace every 5th tuple a bounded distance back in arrival order.
    for (size_t i = 5; i + 1 < out.size(); i += 5) {
      std::swap(out[i], out[i - 3]);
    }
  }
  return out;
}

void AddQueries(GeneralSlicingOperator& op) {
  op.AddAggregation(MakeAggregation("sum"));
  op.AddAggregation(MakeAggregation("median"));  // holistic: retains tuples
  op.AddWindow(std::make_shared<TumblingWindow>(10));
  op.AddWindow(std::make_shared<SlidingWindow>(20, 5));
  op.AddWindow(std::make_shared<SessionWindow>(7));
}

template <typename Op, typename... Args>
std::function<std::unique_ptr<WindowOperator>()> BaselineFactory(
    Args... args) {
  return [args...] {
    auto op = std::make_unique<Op>(args...);
    op->AddAggregation(MakeAggregation("sum"));
    op->AddAggregation(MakeAggregation("median"));
    op->AddWindow(std::make_shared<TumblingWindow>(10));
    op->AddWindow(std::make_shared<SlidingWindow>(20, 5));
    op->AddWindow(std::make_shared<SessionWindow>(7));
    return op;
  };
}

void ExpectCheckpointedMatches(
    const std::function<std::unique_ptr<WindowOperator>()>& factory,
    bool sorted, int wm_every) {
  const std::vector<Tuple> stream = MakeStream(sorted);
  Time max_ts = kNoTime;
  for (const Tuple& t : stream) max_ts = std::max(max_ts, t.ts);
  const Time final_wm = max_ts + 100;
  const Time wm_lag = 16;

  std::unique_ptr<WindowOperator> plain = factory();
  const auto expected =
      RunToFinalResults(*plain, stream, final_wm, wm_every, wm_lag);

  // Snapshot at the start, in the middle, and near the end.
  for (size_t at : {size_t{1}, stream.size() / 2, stream.size() - 2}) {
    std::map<ResultKey, Value> got;
    std::string err;
    ASSERT_TRUE(RunToFinalResultsCheckpointed(factory, stream, final_wm,
                                              wm_every, wm_lag, at, &got,
                                              &err))
        << err;
    EXPECT_EQ(got, expected) << "checkpoint at " << at;
  }
}

TEST(CheckpointRestore, SlicingLazyBitIdentical) {
  ExpectCheckpointedMatches(
      [] {
        GeneralSlicingOperator::Options o;
        o.allowed_lateness = 64;
        auto op = std::make_unique<GeneralSlicingOperator>(o);
        AddQueries(*op);
        return op;
      },
      /*sorted=*/false, /*wm_every=*/16);
}

TEST(CheckpointRestore, SlicingEagerBitIdentical) {
  ExpectCheckpointedMatches(
      [] {
        GeneralSlicingOperator::Options o;
        o.allowed_lateness = 64;
        o.store_mode = StoreMode::kEager;
        auto op = std::make_unique<GeneralSlicingOperator>(o);
        AddQueries(*op);
        return op;
      },
      /*sorted=*/false, /*wm_every=*/16);
}

TEST(CheckpointRestore, SlicingInOrderBitIdentical) {
  ExpectCheckpointedMatches(
      [] {
        GeneralSlicingOperator::Options o;
        o.stream_in_order = true;
        auto op = std::make_unique<GeneralSlicingOperator>(o);
        AddQueries(*op);
        return op;
      },
      /*sorted=*/true, /*wm_every=*/0);
}

TEST(CheckpointRestore, TupleBufferBitIdentical) {
  ExpectCheckpointedMatches(BaselineFactory<TupleBufferOperator>(false, 64),
                            /*sorted=*/false, /*wm_every=*/16);
}

TEST(CheckpointRestore, AggregateTreeBitIdentical) {
  ExpectCheckpointedMatches(BaselineFactory<AggregateTreeOperator>(false, 64),
                            /*sorted=*/false, /*wm_every=*/16);
}

TEST(CheckpointRestore, BucketsBitIdentical) {
  ExpectCheckpointedMatches(BaselineFactory<BucketsOperator>(
                                false, Time{64},
                                BucketsOperator::BucketKind::kAuto),
                            /*sorted=*/false, /*wm_every=*/16);
}

TEST(CheckpointRestore, RestoreIntoMismatchedQuerySetFails) {
  GeneralSlicingOperator::Options o;
  auto src = std::make_unique<GeneralSlicingOperator>(o);
  AddQueries(*src);
  for (int i = 0; i < 20; ++i) src->ProcessTuple(T(i * 3, i, i));
  state::Writer w;
  src->SerializeState(w);

  // The restore target registered different windows: the fingerprint in the
  // state stream must fail the decode instead of mis-wiring window ids.
  auto dst = std::make_unique<GeneralSlicingOperator>(o);
  dst->AddAggregation(MakeAggregation("sum"));
  dst->AddAggregation(MakeAggregation("median"));
  dst->AddWindow(std::make_shared<TumblingWindow>(99));
  dst->AddWindow(std::make_shared<SlidingWindow>(20, 5));
  dst->AddWindow(std::make_shared<SessionWindow>(7));
  state::Reader r(w.bytes());
  dst->DeserializeState(r);
  EXPECT_FALSE(r.ok());
}

// ---------------------------------------------------------------------------
// Keyed operator restore (per-key operators reconstructed via the factory).

TEST(CheckpointRestore, KeyedOperatorRoundTrips) {
  auto inner = [] {
    GeneralSlicingOperator::Options o;
    o.allowed_lateness = 64;
    auto op = std::make_unique<GeneralSlicingOperator>(o);
    AddQueries(*op);
    return op;
  };
  using KeyedResult = std::tuple<int64_t, int, int, Time, Time>;
  auto run = [&](size_t checkpoint_at, std::map<KeyedResult, Value>* out) {
    std::vector<Tuple> stream = MakeStream(/*sorted=*/false);
    for (size_t i = 0; i < stream.size(); ++i) {
      stream[i].key = static_cast<int64_t>(i % 5);
    }
    auto op = std::make_unique<KeyedWindowOperator>(inner);
    auto drain = [&] {
      for (const WindowResult& r : op->TakeResults()) {
        (*out)[{r.key, r.window_id, r.agg_id, r.start, r.end}] = r.value;
      }
    };
    Time max_ts = kNoTime;
    for (size_t i = 0; i < stream.size(); ++i) {
      if (i == checkpoint_at && checkpoint_at > 0) {
        state::Writer w;
        op->SerializeState(w);
        op = std::make_unique<KeyedWindowOperator>(inner);
        state::Reader r(w.bytes());
        op->DeserializeState(r);
        ASSERT_TRUE(r.ok());
        ASSERT_TRUE(r.AtEnd());
      }
      Tuple t = stream[i];
      t.seq = i;
      op->ProcessTuple(t);
      max_ts = std::max(max_ts, t.ts);
      if ((i + 1) % 16 == 0) {
        op->ProcessWatermark(max_ts - 16);
        drain();
      }
    }
    op->ProcessWatermark(max_ts + 100);
    drain();
  };
  std::map<KeyedResult, Value> expected;
  run(0, &expected);
  EXPECT_FALSE(expected.empty());
  for (size_t at : {size_t{17}, size_t{60}, size_t{113}}) {
    std::map<KeyedResult, Value> got;
    run(at, &got);
    EXPECT_EQ(got, expected) << "keyed checkpoint at " << at;
  }
}

// ---------------------------------------------------------------------------
// Pipeline-level checkpointing and restore.

std::function<std::unique_ptr<WindowOperator>()> PipelineFactory() {
  return [] {
    GeneralSlicingOperator::Options o;
    o.allowed_lateness = 2000;
    auto op = std::make_unique<GeneralSlicingOperator>(o);
    op->AddAggregation(MakeAggregation("sum"));
    op->AddWindow(std::make_shared<TumblingWindow>(500));
    op->AddWindow(std::make_shared<SessionWindow>(300));
    return op;
  };
}

TEST(CheckpointPipeline, RestoreResumesWithoutLossOrDuplication) {
  const std::string dir = TempDir("ckpt_pipeline");
  PipelineOptions popts;
  popts.watermark_every = 256;
  popts.watermark_delay = 100;
  constexpr uint64_t kTuples = 2000;

  // Uninterrupted checkpointed run: one snapshot per injected watermark.
  SensorStream full_src(SensorStream::Machine());
  auto full_op = PipelineFactory()();
  // retain = 0: this test restores from the FIRST barrier file, which the
  // default retention policy would have pruned.
  CheckpointCoordinator coord(
      {.directory = dir, .prefix = "full", .retain = 0});
  const CheckpointedPipelineReport full =
      RunCheckpointedPipeline(full_src, *full_op, kTuples, popts, coord);
  EXPECT_EQ(full.report.tuples, kTuples);
  ASSERT_EQ(full.checkpoints, kTuples / popts.watermark_every);
  ASSERT_TRUE(fs::exists(full.last_checkpoint));

  // Restore from the FIRST barrier (offset 256) and replay the remainder
  // with a fresh source. Results drained before that barrier plus results
  // of the resumed run must account for every result of the full run —
  // nothing lost, nothing emitted twice.
  RestoredOperator restored =
      RestoreOperator(dir + "/full-0.snap", PipelineFactory());
  ASSERT_TRUE(restored.ok) << restored.error;
  EXPECT_EQ(restored.meta.source_offset, popts.watermark_every);
  EXPECT_EQ(restored.operator_name, "general-slicing-lazy");

  // Count the results the full run drained before the first barrier.
  SensorStream head_src(SensorStream::Machine());
  auto head_op = PipelineFactory()();
  Time max_ts = kNoTime;
  uint64_t head_results = 0;
  for (uint64_t i = 0; i < popts.watermark_every; ++i) {
    Tuple t;
    ASSERT_TRUE(head_src.Next(&t));
    t.seq = i;
    head_op->ProcessTuple(t);
    max_ts = std::max(max_ts, t.ts);
  }
  head_op->ProcessWatermark(max_ts - popts.watermark_delay);
  head_results = head_op->TakeResults().size();

  SensorStream resume_src(SensorStream::Machine());
  CheckpointCoordinator coord2({.directory = dir, .prefix = "resumed"});
  ResumedPipeline resumed =
      RestorePipeline(dir + "/full-0.snap", PipelineFactory(), resume_src,
                      kTuples, popts, &coord2);
  ASSERT_TRUE(resumed.ok) << resumed.error;
  EXPECT_EQ(resumed.report.report.tuples, kTuples - popts.watermark_every);
  EXPECT_EQ(head_results + resumed.report.report.results,
            full.report.results);
  // The resumed run re-takes every barrier after the restored one, and the
  // barrier index keeps counting from where the snapshot left off.
  EXPECT_EQ(resumed.report.checkpoints, full.checkpoints - 1);
  EXPECT_TRUE(resumed.report.last_checkpoint.ends_with(
      "resumed-" + std::to_string(full.checkpoints - 1) + ".snap"))
      << resumed.report.last_checkpoint;
}

TEST(CheckpointPipeline, RestoreRejectsCorruptFile) {
  const std::string dir = TempDir("ckpt_corrupt");
  SensorStream src(SensorStream::Machine());
  auto op = PipelineFactory()();
  PipelineOptions popts;
  popts.watermark_every = 128;
  CheckpointCoordinator coord({.directory = dir, .prefix = "c", .retain = 0});
  RunCheckpointedPipeline(src, *op, 512, popts, coord);
  ASSERT_TRUE(fs::exists(dir + "/c-0.snap"));

  // Flip a byte in the payload region: restore must fail cleanly.
  std::vector<uint8_t> blob;
  ASSERT_TRUE(ReadSnapshotFile(dir + "/c-0.snap", &blob));
  blob[blob.size() / 2] ^= 0x40;
  std::ofstream(dir + "/c-0.snap", std::ios::binary)
      .write(reinterpret_cast<const char*>(blob.data()),
             static_cast<std::streamsize>(blob.size()));
  RestoredOperator restored =
      RestoreOperator(dir + "/c-0.snap", PipelineFactory());
  EXPECT_FALSE(restored.ok);
  EXPECT_EQ(restored.op, nullptr);
}

// ---------------------------------------------------------------------------
// Crash injection: SCOTTY_CRASH_AFTER=<n> hard-exits after the n-th
// persisted snapshot; the file on disk is complete and restorable.

TEST(CheckpointCrashDeathTest, ExitsAfterNthCheckpointLeavingValidFile) {
  const std::string dir = TempDir("ckpt_crash");
  PipelineOptions popts;
  popts.watermark_every = 128;
  EXPECT_EXIT(
      {
        setenv("SCOTTY_CRASH_AFTER", "2", 1);
        SensorStream src(SensorStream::Machine());
        auto op = PipelineFactory()();
        CheckpointCoordinator coord({.directory = dir, .prefix = "crash"});
        RunCheckpointedPipeline(src, *op, 4000, popts, coord);
      },
      ::testing::ExitedWithCode(42), "");
  // The crash happened after the second file was persisted (post-rename):
  // crash-0 and crash-1 exist and are valid, crash-2 was never written.
  EXPECT_TRUE(fs::exists(dir + "/crash-0.snap"));
  ASSERT_TRUE(fs::exists(dir + "/crash-1.snap"));
  EXPECT_FALSE(fs::exists(dir + "/crash-2.snap"));
  RestoredOperator restored =
      RestoreOperator(dir + "/crash-1.snap", PipelineFactory());
  ASSERT_TRUE(restored.ok) << restored.error;
  EXPECT_EQ(restored.meta.source_offset, 2 * popts.watermark_every);
  EXPECT_EQ(restored.meta.barrier_index, 1u);
}

}  // namespace
}  // namespace scotty
