#ifndef SCOTTY_RUNTIME_LOCAL_SLICE_STORE_H_
#define SCOTTY_RUNTIME_LOCAL_SLICE_STORE_H_

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "aggregates/aggregate_function.h"
#include "common/flat_hash.h"
#include "common/tuple_batch.h"

namespace scotty {

/// Worker-private pre-aggregation buckets for the shared-operator parallel
/// mode (NebulaStream-style slice-level parallelism): each worker folds its
/// share of the stream into fixed-length local buckets without any
/// synchronization, and only the finished per-bucket partials cross threads
/// — one merge per (bucket, watermark) instead of one shared-state update
/// per tuple.
///
/// Bucket bounds are [k*slice_len, (k+1)*slice_len). The executor picks a
/// slice_len that divides every window length and slide, so bucket edges are
/// a superset of all window edges and a bucket never straddles one; the
/// shared operator can then serve any window as a union of merged buckets.
///
/// Only valid for commutative aggregations: workers merge in arbitrary
/// relative order, so non-commutative folds (and FP bit-identity across
/// different worker interleavings) are out of scope by design.
class ThreadLocalSliceStore {
 public:
  struct Bucket {
    Time start = 0;
    Time end = 0;
    Time t_first = 0;  // min/max tuple timestamp seen in this bucket
    Time t_last = 0;
    uint64_t count = 0;
    std::vector<Partial> partials;  // one accumulator per aggregation
  };

  ThreadLocalSliceStore(Time slice_len,
                        const std::vector<AggregateFunctionPtr>& fns)
      : slice_len_(slice_len), fns_(&fns) {
    assert(slice_len_ > 0 && "pre-aggregation slice length must be positive");
  }

  /// Folds every data tuple of the view into its bucket through the column
  /// kernels (one LiftCombineColumns dispatch per maximal same-bucket run).
  /// Punctuation tuples carry no data and are skipped.
  void AddColumns(const TupleColumnsView& cols) {
    size_t i = 0;
    while (i < cols.size) {
      if (cols.IsPunct(i)) {
        ++i;
        continue;
      }
      const Time start = BucketStart(cols.ts[i]);
      const Time end = start + slice_len_;
      size_t j = i + 1;
      while (j < cols.size && !cols.IsPunct(j) && cols.ts[j] >= start &&
             cols.ts[j] < end) {
        ++j;
      }
      Fold(cols.Subview(i, j - i), start, end);
      i = j;
    }
  }

  /// Hands every bucket that ends at or before `wm` to `merge` and removes
  /// it. Buckets are visited in creation order (ascending starts for
  /// in-order streams); the shared merge is order-insensitive either way.
  template <typename MergeFn>
  void DrainCompletedUpTo(Time wm, MergeFn&& merge) {
    size_t kept = 0;
    for (size_t i = 0; i < buckets_.size(); ++i) {
      if (buckets_[i].end <= wm) {
        merge(buckets_[i]);
      } else {
        if (kept != i) buckets_[kept] = std::move(buckets_[i]);
        ++kept;
      }
    }
    if (kept == buckets_.size()) return;
    buckets_.resize(kept);
    ReindexBuckets();
  }

  /// Hands every bucket to `merge` and empties the store (the stop path:
  /// nothing local may outlive the worker).
  template <typename MergeFn>
  void DrainAll(MergeFn&& merge) {
    for (const Bucket& b : buckets_) merge(b);
    buckets_.clear();
    index_.Clear();
  }

  size_t num_buckets() const { return buckets_.size(); }

 private:
  Time BucketStart(Time ts) const {
    Time q = ts / slice_len_;
    if (ts % slice_len_ < 0) --q;  // floor division for negative timestamps
    return q * slice_len_;
  }

  void Fold(const TupleColumnsView& cols, Time start, Time end) {
    bool inserted = false;
    const uint32_t slot = index_.FindOrInsert(
        start, static_cast<uint32_t>(buckets_.size()), &inserted);
    if (inserted) {
      Bucket b;
      b.start = start;
      b.end = end;
      b.t_first = cols.ts[0];
      b.t_last = cols.ts[0];
      b.partials.resize(fns_->size());
      buckets_.push_back(std::move(b));
    }
    Bucket& b = buckets_[slot];
    for (size_t a = 0; a < fns_->size(); ++a) {
      (*fns_)[a]->LiftCombineColumns(cols, b.partials[a]);
    }
    for (size_t i = 0; i < cols.size; ++i) {
      if (cols.ts[i] < b.t_first) b.t_first = cols.ts[i];
      if (cols.ts[i] > b.t_last) b.t_last = cols.ts[i];
    }
    b.count += cols.size;
  }

  void ReindexBuckets() {
    index_.Clear();
    for (size_t i = 0; i < buckets_.size(); ++i) {
      index_.FindOrInsert(buckets_[i].start, static_cast<uint32_t>(i));
    }
  }

  Time slice_len_;
  const std::vector<AggregateFunctionPtr>* fns_;
  std::vector<Bucket> buckets_;
  FlatKeyMap<uint32_t> index_{16};  // bucket start -> index into buckets_
};

}  // namespace scotty

#endif  // SCOTTY_RUNTIME_LOCAL_SLICE_STORE_H_
